//! The [`Engine`] decorator that executes a [`FaultPlane`]'s schedule.

use std::collections::HashSet;
use std::sync::Arc;

use adya_engine::{
    AbortReason, Catalog, Engine, EngineError, EventTap, Key, OpResult, SeqEventTap, TableId,
    TablePred,
};
use adya_history::{History, TxnId, Value};
use parking_lot::Mutex;

use crate::plane::{Decision, FaultPlane, Site};

/// Wraps any engine and injects the plane's faults at every fallible
/// trait call site.
///
/// Semantics, chosen so the decorated engine still honours the
/// `Engine` contract:
///
/// * **Injected `Blocked`** returns *before* touching the inner
///   engine, with an empty holder list — it is indistinguishable from
///   a transient conflict that cleared, and retrying the identical
///   call is safe exactly as the trait documents.
/// * **Injected aborts** abort the transaction on the inner engine
///   (so the recorded history shows a real abort) and surface as
///   [`AbortReason::Injected`]; every later call on the dead handle
///   also answers `Aborted(Injected)` rather than leaking the inner
///   engine's bookkeeping reason.
/// * **Crash points** fire at scheduled commit attempts: *every*
///   in-flight transaction is aborted at once — committed data stays
///   durable in the inner engine, exactly the paper's completion rule
///   for a crash — and the poisoned handles answer
///   `Aborted(Injected)` until the driver gives up or restarts them.
/// * **`abort` is never faulted** (it is the recovery path) and stays
///   idempotent.
pub struct FaultyEngine<E> {
    inner: E,
    plane: Arc<FaultPlane>,
    /// Transactions begun and not yet terminally resolved *by the
    /// wrapper's own accounting* (a crash point clears it wholesale).
    live: Mutex<HashSet<TxnId>>,
    /// Handles killed by an injected abort or a crash; every later
    /// call answers `Aborted(Injected)` until `abort` reclaims them.
    poisoned: Mutex<HashSet<TxnId>>,
}

impl<E: Engine> FaultyEngine<E> {
    /// Decorates `inner` with `plane`'s schedule. The plane is shared
    /// so the harness can read its [`stats`](FaultPlane::stats).
    pub fn new(inner: E, plane: Arc<FaultPlane>) -> FaultyEngine<E> {
        FaultyEngine {
            inner,
            plane,
            live: Mutex::new(HashSet::new()),
            poisoned: Mutex::new(HashSet::new()),
        }
    }

    /// The shared fault plane.
    pub fn plane(&self) -> &Arc<FaultPlane> {
        &self.plane
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Consults the plane for one call on `txn` at `site`; `Err` means
    /// the call is answered without reaching the inner engine.
    fn gate(&self, txn: TxnId, site: Site) -> Result<(), EngineError> {
        if self.poisoned.lock().contains(&txn) {
            return Err(EngineError::Aborted(AbortReason::Injected));
        }
        match self.plane.decide(site) {
            Decision::Pass => Ok(()),
            Decision::Delay => {
                self.plane.delay();
                Ok(())
            }
            Decision::Block => Err(EngineError::Blocked {
                holders: Vec::new(),
            }),
            Decision::Abort => {
                let _ = self.inner.abort(txn);
                self.live.lock().remove(&txn);
                self.poisoned.lock().insert(txn);
                Err(EngineError::Aborted(AbortReason::Injected))
            }
        }
    }

    /// Takes a crash point: every live transaction is aborted on the
    /// inner engine and poisoned. Returns the number of victims.
    fn crash(&self, committer: TxnId) -> usize {
        let victims: Vec<TxnId> = {
            let mut live = self.live.lock();
            let v = live.iter().copied().collect();
            live.clear();
            v
        };
        let n = victims.len();
        for t in &victims {
            let _ = self.inner.abort(*t);
        }
        let mut poisoned = self.poisoned.lock();
        for t in victims {
            if t != committer {
                poisoned.insert(t);
            }
        }
        adya_obs::counter!("faults.crash_victims").add(n as u64);
        adya_obs::global().event(
            "faults.crash",
            vec![("victims".into(), adya_obs::Field::from(n as u64))],
        );
        n
    }
}

impl<E: Engine> Engine for FaultyEngine<E> {
    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn catalog(&self) -> &Catalog {
        self.inner.catalog()
    }

    fn begin(&self) -> TxnId {
        let t = self.inner.begin();
        self.live.lock().insert(t);
        t
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        self.gate(txn, Site::Read)?;
        self.inner.read(txn, table, key)
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        self.gate(txn, Site::Write)?;
        self.inner.write(txn, table, key, value)
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        self.gate(txn, Site::Delete)?;
        self.inner.delete(txn, table, key)
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        self.gate(txn, Site::Select)?;
        self.inner.select(txn, pred)
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        if self.poisoned.lock().contains(&txn) {
            return Err(EngineError::Aborted(AbortReason::Injected));
        }
        if self.plane.crash_due() {
            self.crash(txn);
            return Err(EngineError::Aborted(AbortReason::Injected));
        }
        self.gate(txn, Site::Commit)?;
        let r = self.inner.commit(txn);
        match &r {
            Ok(()) | Err(EngineError::Aborted(_)) => {
                self.live.lock().remove(&txn);
            }
            Err(EngineError::Blocked { .. }) | Err(EngineError::UnknownTxn) => {}
        }
        r
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        self.live.lock().remove(&txn);
        self.poisoned.lock().remove(&txn);
        self.inner.abort(txn)
    }

    fn set_event_tap(&self, tap: EventTap) {
        self.inner.set_event_tap(tap);
    }
    fn set_seq_event_tap(&self, tap: SeqEventTap) {
        self.inner.set_seq_event_tap(tap);
    }

    fn finalize(&self) -> History {
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::FaultConfig;
    use adya_engine::{LockConfig, LockingEngine};

    fn table(e: &dyn Engine) -> TableId {
        e.catalog().table("acct")
    }

    #[test]
    fn quiet_plane_is_transparent() {
        let plane = Arc::new(FaultPlane::new(FaultConfig::quiet(1)));
        let e = FaultyEngine::new(LockingEngine::new(LockConfig::serializable()), plane);
        let t = table(&e);
        let t1 = e.begin();
        e.write(t1, t, Key(1), Value::Int(5)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, t, Key(1)).unwrap(), Some(Value::Int(5)));
        e.commit(t2).unwrap();
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 2);
        assert_eq!(e.plane().stats(), Default::default());
    }

    #[test]
    fn injected_abort_reports_injected_everywhere() {
        let plane = Arc::new(FaultPlane::new(FaultConfig {
            seed: 0,
            block_prob: 0.0,
            abort_prob: 1.0,
            delay_prob: 0.0,
            delay_spins: 0,
            crash_every: None,
        }));
        let e = FaultyEngine::new(LockingEngine::new(LockConfig::serializable()), plane);
        let t = table(&e);
        let t1 = e.begin();
        assert_eq!(
            e.write(t1, t, Key(1), Value::Int(5)),
            Err(EngineError::Aborted(AbortReason::Injected))
        );
        // The dead handle keeps answering Injected, not the inner
        // engine's bookkeeping reason.
        assert_eq!(
            e.read(t1, t, Key(1)),
            Err(EngineError::Aborted(AbortReason::Injected))
        );
        assert_eq!(
            e.commit(t1),
            Err(EngineError::Aborted(AbortReason::Injected))
        );
        // Abort stays idempotent and reclaims the handle.
        assert_eq!(e.abort(t1), Ok(()));
        assert_eq!(e.abort(t1), Ok(()));
    }

    #[test]
    fn injected_block_leaves_no_side_effects() {
        let plane = Arc::new(FaultPlane::new(FaultConfig {
            seed: 0,
            block_prob: 0.5,
            abort_prob: 0.0,
            delay_prob: 0.0,
            delay_spins: 0,
            crash_every: None,
        }));
        let e = FaultyEngine::new(LockingEngine::new(LockConfig::serializable()), plane);
        let t = table(&e);
        let t1 = e.begin();
        // Retry each write through injected blocks; every write must
        // eventually land exactly once and the history stay clean.
        let mut blocks = 0;
        for k in 1..=20u64 {
            loop {
                match e.write(t1, t, Key(k), Value::Int(7)) {
                    Ok(()) => break,
                    Err(EngineError::Blocked { holders }) => {
                        assert!(holders.is_empty());
                        blocks += 1;
                        assert!(blocks < 1000, "block schedule never clears");
                    }
                    Err(other) => panic!("{other:?}"),
                }
            }
        }
        loop {
            match e.commit(t1) {
                Ok(()) => break,
                Err(EngineError::Blocked { .. }) => {}
                Err(other) => panic!("{other:?}"),
            }
        }
        assert!(blocks > 0, "20 writes at 50% should block at least once");
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 1);
    }

    #[test]
    fn crash_point_loses_in_flight_keeps_committed() {
        let plane = Arc::new(FaultPlane::new(FaultConfig {
            seed: 9,
            block_prob: 0.0,
            abort_prob: 0.0,
            delay_prob: 0.0,
            delay_spins: 0,
            crash_every: Some(2),
        }));
        let e = FaultyEngine::new(LockingEngine::new(LockConfig::serializable()), plane);
        let t = table(&e);
        // First commit survives (crash at every 2nd attempt).
        let t1 = e.begin();
        e.write(t1, t, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        // Two in-flight transactions; t2's commit attempt is the crash.
        let t2 = e.begin();
        let t3 = e.begin();
        e.write(t2, t, Key(2), Value::Int(2)).unwrap();
        e.write(t3, t, Key(3), Value::Int(3)).unwrap();
        assert_eq!(
            e.commit(t2),
            Err(EngineError::Aborted(AbortReason::Injected))
        );
        // t3 was poisoned by the crash.
        assert_eq!(
            e.read(t3, t, Key(3)),
            Err(EngineError::Aborted(AbortReason::Injected))
        );
        assert_eq!(e.abort(t3), Ok(()));
        // Committed data survived; recovery can run a fresh transaction.
        let t4 = e.begin();
        assert_eq!(e.read(t4, t, Key(1)).unwrap(), Some(Value::Int(1)));
        assert_eq!(e.read(t4, t, Key(2)).unwrap(), None);
        e.commit(t4).unwrap();
        assert_eq!(e.plane().stats().crashes, 1);
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 2);
    }
}

//! The metrics registry: named counters/gauges/histograms plus the
//! event journal, with snapshot and JSON export.
//!
//! Registration (name → metric) takes a short lock; recording through
//! a returned handle is lock-free. Instrumented call sites cache the
//! `Arc` handle (see the `counter!`/`gauge!`/`histogram!` macros), so
//! the registry lock is touched once per call site per process.
//! `reset` zeroes metrics *in place*, keeping every cached handle
//! valid — that is what makes cheap per-run deltas possible in the
//! bench binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::journal::{Event, Field, Journal};
use crate::json::{esc, JsonWriter};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::spans::{current_tid, pop_span, push_span, SpanRecord, SpanRing, DEFAULT_SPAN_CAPACITY};

/// Default journal capacity (events retained before eviction).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A named collection of metrics, a journal, and a span ring.
pub struct Registry {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    journal: Journal,
    spans: SpanRing,
    /// Interned span names; a [`SpanRecord`] stores an index into this
    /// table instead of a pointer so ring slots stay plain words.
    span_names: Mutex<Vec<&'static str>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default journal capacity.
    pub fn new() -> Registry {
        Registry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Registry {
        Registry {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            journal: Journal::new(capacity),
            spans: SpanRing::new(DEFAULT_SPAN_CAPACITY),
            span_names: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since this registry was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Records a journal event with typed fields.
    pub fn event(&self, name: &str, fields: Vec<(String, Field)>) {
        self.journal.record(self.now_ns(), name, fields);
    }

    /// The retained journal events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.journal.events()
    }

    /// Starts a span: a timer that records its elapsed nanoseconds
    /// into histogram `name` when dropped (or at [`SpanTimer::stop`]).
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer {
            hist: self.histogram(name),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Times `f`, recording elapsed nanoseconds into histogram `name`,
    /// and passes its result through.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Interns `name` into the span-name table, returning its index.
    /// Idempotent; call-site macros cache the result.
    pub fn span_name_id(&self, name: &'static str) -> u32 {
        let mut names = self.span_names.lock();
        if let Some(i) = names.iter().position(|&n| n == name) {
            return i as u32;
        }
        names.push(name);
        (names.len() - 1) as u32
    }

    /// Starts a *structured* span: a wide event with identity and
    /// parent/child context (thread-local nesting) that lands in the
    /// span ring on drop, in addition to feeding the latency
    /// histogram of the same name. Prefer the `span!` macro, which
    /// caches the interned name and histogram handle per call site.
    pub fn wide_span(&self, name: &'static str) -> WideSpan<'_> {
        let id = self.span_name_id(name);
        let hist = self.histogram(name);
        self.wide_span_cached(id, hist)
    }

    /// [`wide_span`](Registry::wide_span) with pre-resolved handles.
    pub fn wide_span_cached(&self, name_id: u32, hist: Arc<Histogram>) -> WideSpan<'_> {
        let (id, parent) = push_span();
        WideSpan {
            reg: self,
            hist,
            id,
            parent,
            name_id,
            t0_ns: self.now_ns(),
            start: Instant::now(),
        }
    }

    /// Copies out the retained span records, oldest first.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.collect(&self.span_names.lock())
    }

    /// Spans rotated out of (or dropped by) the bounded ring.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Total spans ever recorded into the ring.
    pub fn spans_recorded(&self) -> u64 {
        self.spans.recorded()
    }

    /// Empties the span ring only (metrics and journal untouched):
    /// the streaming `--trace-out` segment writer drains retained
    /// spans per segment without disturbing live SLI gauges.
    pub fn reset_spans(&self) {
        self.spans.reset();
    }

    /// Zeroes every metric in place and clears the journal. Cached
    /// handles stay valid; names stay registered.
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        self.journal.reset();
        self.spans.reset();
    }

    /// Copies out every metric value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            events_dropped: self.journal.dropped(),
            events: self.journal.events(),
            spans_recorded: self.spans.recorded(),
            spans_dropped: self.spans.dropped(),
        }
    }

    /// Renders the full registry as a JSON object (see
    /// [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// RAII guard returned by [`Registry::wide_span`]: a structured span
/// with identity and parentage. On drop it deposits a wide event into
/// the registry's span ring and records its duration into the latency
/// histogram sharing its name.
pub struct WideSpan<'a> {
    reg: &'a Registry,
    hist: Arc<Histogram>,
    id: u64,
    parent: u64,
    name_id: u32,
    t0_ns: u64,
    start: Instant,
}

impl WideSpan<'_> {
    /// This span's process-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parent span's id (0 when root).
    pub fn parent(&self) -> u64 {
        self.parent
    }
}

impl Drop for WideSpan<'_> {
    fn drop(&mut self) {
        let dur = self.start.elapsed().as_nanos() as u64;
        self.reg.spans.record(
            self.id,
            self.parent,
            self.name_id,
            current_tid(),
            self.t0_ns,
            dur,
        );
        self.hist.record(dur);
        pop_span(self.parent);
    }
}

/// RAII timer returned by [`Registry::span`].
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl SpanTimer {
    /// Stops the span now, recording its duration; returns the
    /// elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let ns = self.start.elapsed().as_nanos() as u64;
        self.hist.record(ns);
        self.armed = false;
        ns
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }
}

/// Escapes a Prometheus HELP text (`\` and newline).
fn esc_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a Prometheus label value (`\`, `"` and newline).
fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Builds a labelled metric name, `base{k="v",...}`, with label values
/// escaped per the exposition spec. Register the result like any other
/// name; [`Snapshot::to_prometheus`] renders it as a labelled series
/// of the `base` family. Callers with a dynamic label set (one series
/// per checker session, say) hold the returned handle rather than
/// going through the call-site-cached `counter!`/`gauge!` macros.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut s = String::from(base);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", esc_label(v));
    }
    s.push('}');
    s
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Events evicted from the journal by the capacity bound.
    pub events_dropped: u64,
    /// Retained journal events, oldest first.
    pub events: Vec<Event>,
    /// Total structured spans recorded into the span ring.
    pub spans_recorded: u64,
    /// Structured spans rotated out of the bounded span ring.
    pub spans_dropped: u64,
}

impl Snapshot {
    /// Counter value by name (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when never registered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram statistics by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Writes this snapshot as the value of `key` into `w` (or as a
    /// bare object when `key` is `None`). Keys are sorted, so output
    /// is deterministic up to timing values.
    pub fn write_json(&self, w: &mut JsonWriter, key: Option<&str>) {
        w.open_object(key);
        w.open_object(Some("counters"));
        for (name, v) in &self.counters {
            w.u64_field(name, *v);
        }
        w.close_object();
        w.open_object(Some("gauges"));
        for (name, v) in &self.gauges {
            w.i64_field(name, *v);
        }
        w.close_object();
        w.open_object(Some("histograms"));
        for (name, h) in &self.histograms {
            w.open_object(Some(name));
            w.u64_field("count", h.count);
            w.u64_field("sum", h.sum);
            w.u64_field("min", h.min);
            w.u64_field("max", h.max);
            w.u64_field("p50", h.p50);
            w.u64_field("p90", h.p90);
            w.u64_field("p99", h.p99);
            w.close_object();
        }
        w.close_object();
        w.u64_field("events_dropped", self.events_dropped);
        w.u64_field("spans_recorded", self.spans_recorded);
        w.u64_field("spans_dropped", self.spans_dropped);
        w.open_array(Some("events"));
        for e in &self.events {
            let mut fields = String::new();
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    fields.push_str(", ");
                }
                let rendered = match v {
                    Field::U64(x) => x.to_string(),
                    Field::I64(x) => x.to_string(),
                    Field::F64(x) => crate::json::num_f64(*x),
                    Field::Bool(x) => x.to_string(),
                    Field::Str(x) => format!("\"{}\"", esc(x)),
                };
                fields.push_str(&format!("\"{}\": {rendered}", esc(k)));
            }
            w.raw_element(&format!(
                "{{\"seq\": {}, \"t_ns\": {}, \"name\": \"{}\", \"fields\": {{{fields}}}}}",
                e.seq,
                e.t_ns,
                esc(&e.name)
            ));
        }
        w.close_array();
        w.close_object();
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): a paired `# HELP` / `# TYPE` header per metric
    /// family, names sanitized (`.` and any other non-`[a-zA-Z0-9_:]`
    /// become `_`). Counters map to `counter`, gauges to `gauge`,
    /// histograms to a `summary` with quantile labels plus
    /// `_sum`/`_count`. Label values are escaped per the exposition
    /// spec (`\\`, `\"`, `\n`). The journal is not exported —
    /// Prometheus scrapes numbers, not logs.
    ///
    /// A registered name of the form `base{key="value"}` (see
    /// [`labeled`](crate::labeled())) renders as a labelled series of
    /// the `base` family: only `base` is sanitized, the label block
    /// passes through verbatim, and adjacent series of the same family
    /// share one HELP/TYPE header — how the serve fleet exposes
    /// per-session SLIs.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// [`Snapshot::to_prometheus`] with `extra` labels injected into
    /// *every* sample line (prepended to any per-series label block).
    /// This is how a fleet node stamps its identity — `node`, `role` —
    /// onto an exposition so multi-node scrapes stay distinguishable.
    /// Passing an empty slice is byte-identical to `to_prometheus`.
    pub fn to_prometheus_labeled(&self, extra: &[(&str, &str)]) -> String {
        fn sanitize(name: &str) -> String {
            let mut s: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                s.insert(0, '_');
            }
            s
        }
        /// Splits `base{k="v"}` into (`base`, Some(`k="v"`)).
        fn split_labels(name: &str) -> (&str, Option<&str>) {
            match name.find('{') {
                Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
                _ => (name, None),
            }
        }
        fn header(out: &mut String, last: &mut String, n: &str, source: &str, kind: &str) {
            if *last == n {
                return; // same family: one header covers all series
            }
            let source = split_labels(source).0;
            let _ = writeln!(out, "# HELP {n} adya metric {}", esc_help(source));
            let _ = writeln!(out, "# TYPE {n} {kind}");
            *last = n.to_string();
        }
        // The injected label block, rendered once: `node="a",role="x"`.
        let mut injected = String::new();
        for (i, (k, v)) in extra.iter().enumerate() {
            if i > 0 {
                injected.push(',');
            }
            let _ = write!(injected, "{k}=\"{}\"", esc_label(v));
        }
        // Joins the injected block with a series' own label block.
        let block = |own: Option<&str>| -> String {
            match (injected.is_empty(), own) {
                (true, None) => String::new(),
                (true, Some(l)) => format!("{{{l}}}"),
                (false, None) => format!("{{{injected}}}"),
                (false, Some(l)) => format!("{{{injected},{l}}}"),
            }
        };
        let mut out = String::new();
        let mut last = String::new();
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let n = sanitize(base);
            header(&mut out, &mut last, &n, name, "counter");
            let _ = writeln!(out, "{n}{} {v}", block(labels));
        }
        for (name, v) in &self.gauges {
            let (base, labels) = split_labels(name);
            let n = sanitize(base);
            header(&mut out, &mut last, &n, name, "gauge");
            let _ = writeln!(out, "{n}{} {v}", block(labels));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let n = sanitize(base);
            header(&mut out, &mut last, &n, name, "summary");
            let mut prefix = labels.map(|l| format!("{l},")).unwrap_or_default();
            if !injected.is_empty() {
                prefix = format!("{injected},{prefix}");
            }
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let _ = writeln!(out, "{n}{{{prefix}quantile=\"{}\"}} {v}", esc_label(q));
            }
            let _ = writeln!(out, "{n}_sum{} {}", block(labels), h.sum);
            let _ = writeln!(out, "{n}_count{} {}", block(labels), h.count);
        }
        for (n, source, v) in [
            (
                "adya_obs_events_dropped",
                "journal events evicted by the capacity bound",
                self.events_dropped,
            ),
            (
                "adya_obs_spans_recorded",
                "structured spans recorded into the ring",
                self.spans_recorded,
            ),
            (
                "adya_obs_spans_dropped",
                "structured spans rotated out of the bounded ring",
                self.spans_dropped,
            ),
        ] {
            header(&mut out, &mut last, n, source, "counter");
            let _ = writeln!(out, "{n}{} {v}", block(None));
        }
        out
    }

    /// Renders the snapshot as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w, None);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_reset_in_place() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 2);
        r.reset();
        assert_eq!(r.snapshot().counter("x"), 0);
        a.inc();
        assert_eq!(r.snapshot().counter("x"), 1, "handle survives reset");
    }

    #[test]
    fn spans_record_into_histograms() {
        let r = Registry::new();
        {
            let _s = r.span("work_ns");
        }
        let ns = r.span("work_ns").stop();
        let snap = r.snapshot();
        let h = snap.histogram("work_ns").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= ns);
        assert_eq!(r.time("work_ns", || 41 + 1), 42);
        assert_eq!(r.snapshot().histogram("work_ns").unwrap().count, 3);
    }

    #[test]
    fn json_shape_is_wellformed_and_sorted() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.gauge("g").set(-5);
        r.histogram("h").record(7);
        r.event("ev", vec![("k".into(), Field::Str("v\"q".into()))]);
        let s = r.to_json();
        assert!(s.contains("\"a.first\": 1"));
        assert!(s.contains("\"b.second\": 2"));
        assert!(s.find("a.first").unwrap() < s.find("b.second").unwrap());
        assert!(s.contains("\"g\": -5"));
        assert!(s.contains("\"count\": 1"));
        assert!(s.contains("\"name\": \"ev\""));
        assert!(s.contains("\\\"q"));
        let unescaped_quotes = s
            .replace("\\\\", "")
            .replace("\\\"", "")
            .matches('"')
            .count();
        assert_eq!(unescaped_quotes % 2, 0, "balanced quotes:\n{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let r = Registry::new();
        r.counter("checker.dsg.nodes").add(3);
        r.gauge("online.live-txns").set(-1);
        r.histogram("checker.phase.total_ns").record(10);
        r.histogram("checker.phase.total_ns").record(30);
        let s = r.snapshot().to_prometheus();
        assert!(s.contains("# TYPE checker_dsg_nodes counter\n"), "{s}");
        assert!(s.contains("checker_dsg_nodes 3\n"), "{s}");
        assert!(s.contains("# TYPE online_live_txns gauge\n"), "{s}");
        assert!(s.contains("online_live_txns -1\n"), "{s}");
        assert!(s.contains("# TYPE checker_phase_total_ns summary\n"), "{s}");
        assert!(
            s.contains("checker_phase_total_ns{quantile=\"0.5\"}"),
            "{s}"
        );
        assert!(s.contains("checker_phase_total_ns_sum 40\n"), "{s}");
        assert!(s.contains("checker_phase_total_ns_count 2\n"), "{s}");
        assert!(s.contains("adya_obs_events_dropped 0\n"), "{s}");
        // Every non-comment line is `name[{labels}] value`.
        for line in s.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty() && value.parse::<i64>().is_ok(), "{line}");
        }
        // JSON and text renderings are untouched by the new format.
        assert!(r.to_json().contains("\"checker.dsg.nodes\": 3"));
    }

    #[test]
    fn labeled_series_share_a_family_header() {
        let r = Registry::new();
        r.counter(&labeled("serve.events", &[("session", "a")]))
            .add(3);
        r.counter(&labeled("serve.events", &[("session", "b")]))
            .add(5);
        r.gauge(&labeled("sli.lag", &[("session", "a\"x")])).set(7);
        r.histogram(&labeled("serve.ingest_ns", &[("session", "a")]))
            .record(9);
        let s = r.snapshot().to_prometheus();
        assert!(s.contains("serve_events{session=\"a\"} 3\n"), "{s}");
        assert!(s.contains("serve_events{session=\"b\"} 5\n"), "{s}");
        assert_eq!(
            s.matches("# TYPE serve_events counter").count(),
            1,
            "one header for the family:\n{s}"
        );
        // Label values are escaped, not sanitized into the name.
        assert!(s.contains("sli_lag{session=\"a\\\"x\"} 7\n"), "{s}");
        // Summary series merge the quantile label into the label set.
        assert!(
            s.contains("serve_ingest_ns{session=\"a\",quantile=\"0.5\"} 9\n"),
            "{s}"
        );
        assert!(s.contains("serve_ingest_ns_sum{session=\"a\"} 9\n"), "{s}");
        assert!(
            s.contains("serve_ingest_ns_count{session=\"a\"} 1\n"),
            "{s}"
        );
    }

    #[test]
    fn snapshot_lookups_default_to_zero() {
        let r = Registry::new();
        let snap = r.snapshot();
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), 0);
        assert!(snap.histogram("missing").is_none());
    }
}

//! Minimal hand-rolled JSON emission, matching the `adya-check`
//! house style: the sanctioned dependency set has no serializer and
//! the shapes are small, so a string builder with escaping is enough.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emits a finite float (JSON has no NaN/Inf; those become `null`).
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An indentation-aware JSON object/array builder for the export
/// paths. Not general-purpose: keys are emitted in call order and the
/// caller is responsible for calling `open_*`/`close_*` in pairs.
pub struct JsonWriter {
    out: String,
    indent: usize,
    need_comma: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            indent: 0,
            need_comma: vec![false],
        }
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn begin_item(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
        if !self.out.is_empty() {
            self.out.push('\n');
        }
        self.pad();
    }

    fn open(&mut self, key: Option<&str>, bracket: char) {
        self.begin_item();
        if let Some(k) = key {
            let _ = write!(self.out, "\"{}\": ", esc(k));
        }
        self.out.push(bracket);
        self.indent += 1;
        self.need_comma.push(false);
    }

    fn close(&mut self, bracket: char) {
        let had_items = self.need_comma.pop().unwrap_or(false);
        self.indent -= 1;
        if had_items {
            self.out.push('\n');
            self.pad();
        }
        self.out.push(bracket);
    }

    /// Opens an object, optionally as the value of `key`.
    pub fn open_object(&mut self, key: Option<&str>) {
        self.open(key, '{');
    }

    /// Closes the innermost object.
    pub fn close_object(&mut self) {
        self.close('}');
    }

    /// Opens an array, optionally as the value of `key`.
    pub fn open_array(&mut self, key: Option<&str>) {
        self.open(key, '[');
    }

    /// Closes the innermost array.
    pub fn close_array(&mut self) {
        self.close(']');
    }

    /// Emits `"key": <raw>` where `raw` is already valid JSON.
    pub fn raw_field(&mut self, key: &str, raw: &str) {
        self.begin_item();
        let _ = write!(self.out, "\"{}\": {raw}", esc(key));
    }

    /// Emits a string field.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.raw_field(key, &format!("\"{}\"", esc(value)));
    }

    /// Emits an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.raw_field(key, &value.to_string());
    }

    /// Emits a signed integer field.
    pub fn i64_field(&mut self, key: &str, value: i64) {
        self.raw_field(key, &value.to_string());
    }

    /// Emits a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.raw_field(key, if value { "true" } else { "false" });
    }

    /// Emits a raw JSON array element.
    pub fn raw_element(&mut self, raw: &str) {
        self.begin_item();
        self.out.push_str(raw);
    }

    /// Finishes, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_structure_renders() {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.u64_field("n", 3);
        w.open_object(Some("inner"));
        w.str_field("s", "x\"y");
        w.bool_field("ok", true);
        w.close_object();
        w.open_array(Some("xs"));
        w.raw_element("1");
        w.raw_element("2");
        w.close_array();
        w.close_object();
        let s = w.finish();
        assert!(s.contains("\"inner\": {"));
        assert!(s.contains("\"s\": \"x\\\"y\""));
        assert!(s.contains("\"xs\": [\n"));
        let unescaped_quotes = s
            .replace("\\\\", "")
            .replace("\\\"", "")
            .matches('"')
            .count();
        assert_eq!(unescaped_quotes % 2, 0, "balanced quotes: {s}");
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn empty_containers_stay_tight() {
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.open_array(Some("empty"));
        w.close_array();
        w.close_object();
        assert!(w.finish().contains("\"empty\": []"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(num_f64(1.5), "1.5");
        assert_eq!(num_f64(f64::NAN), "null");
        assert_eq!(num_f64(f64::INFINITY), "null");
    }
}

//! A deliberately small, std-only HTTP/1.1 server for the obs
//! endpoint: thread-per-connection (mirroring the `crates/workloads`
//! retry machinery), `GET`-only, `Connection: close` on every
//! response. It exists so `adya-check --stream --obs-listen` can
//! serve `/metrics`, `/health`, and `/trace` while the checker
//! ingests — no async runtime, no TLS, no keep-alive, because a
//! scrape every few seconds is the whole workload.
//!
//! The server owns only transport concerns. Routing and payload
//! rendering live in the handler the caller supplies, which maps a
//! request path to a [`Response`]; the handler runs on the
//! per-connection thread and must therefore be `Send + Sync`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// An HTTP response produced by an obs-endpoint handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::ok("application/json", body)
    }

    /// A plain-text response with an arbitrary status (used for 404s
    /// and the `/health` 503 degradation signal).
    pub fn status(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Handler type: maps a request path (query string stripped) to a
/// response. Runs on the per-connection thread.
pub type Handler = Arc<dyn Fn(&str) -> Response + Send + Sync>;

/// The obs endpoint server. Binding spawns an accept loop thread;
/// dropping the server (or calling [`ObsServer::shutdown`]) stops it.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `handler` on a background accept loop. The
    /// listener is nonblocking and the loop polls a stop flag every
    /// 25ms so shutdown never hangs on a quiet socket.
    pub fn bind(addr: &str, handler: Handler) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in_loop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("obs-accept".into())
            .spawn(move || {
                while !stop_in_loop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let h = Arc::clone(&handler);
                            // Connection threads are detached: each one
                            // serves a single request with a read
                            // timeout, so none outlives shutdown by
                            // more than that bound.
                            let _ = thread::Builder::new()
                                .name("obs-conn".into())
                                .spawn(move || serve_connection(stream, h));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                }
            })?;
        Ok(ObsServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Longest request line answered; anything longer is a 400.
const MAX_REQUEST_LINE: u64 = 8 * 1024;
/// Total header bytes drained before the request is refused. Headers
/// are ignored either way — the bound exists so a hostile peer cannot
/// pin a connection thread (and the 5s read timeout) behind an
/// endless header stream.
const MAX_HEADER_BYTES: usize = 32 * 1024;

/// Serves exactly one request on `stream` and closes it. Malformed
/// input — no request line, an unterminated or oversized one, header
/// floods, bodies on non-GET methods — is answered with 400/405 (or a
/// plain close when the peer sent nothing) rather than trusted; the
/// socket arrives off the network.
fn serve_connection(stream: TcpStream, handler: Handler) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = Vec::new();
    match (&mut reader)
        .take(MAX_REQUEST_LINE)
        .read_until(b'\n', &mut request_line)
    {
        // Peer connected and said nothing (or vanished): no request
        // to answer, close cleanly.
        Ok(0) | Err(_) => return,
        Ok(_) if !request_line.ends_with(b"\n") => {
            return write_response(stream, &Response::status(400, "request line too long\n"));
        }
        Ok(_) => {}
    }
    // Lossy: a mangled method/target routes to the 400/405 arms below
    // instead of silently dropping the connection.
    let request_line = String::from_utf8_lossy(&request_line).into_owned();
    // Drain headers so well-behaved clients see a clean close; bodies
    // on GET are ignored. Bounded: a header flood gets a 400, not an
    // unbounded read loop.
    let mut drained = 0usize;
    loop {
        let mut line = Vec::new();
        match (&mut reader)
            .take(MAX_HEADER_BYTES as u64 + 1)
            .read_until(b'\n', &mut line)
        {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if line == b"\r\n" || line == b"\n" {
                    break;
                }
                drained += n;
                if drained > MAX_HEADER_BYTES {
                    return write_response(stream, &Response::status(400, "headers too large\n"));
                }
            }
        }
    }
    let response = route_request(&request_line, &handler);
    write_response(stream, &response);
}

/// Parses the request line and dispatches to the handler. Query
/// strings are stripped before routing so `/health?verbose=1` still
/// hits `/health`.
fn route_request(request_line: &str, handler: &Handler) -> Response {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() {
        return Response::status(400, "bad request\n");
    }
    if method != "GET" {
        return Response::status(405, "only GET is supported\n");
    }
    let path = target.split('?').next().unwrap_or(target);
    handler(path)
}

fn write_response(mut stream: TcpStream, r: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        r.reason(),
        r.content_type,
        r.body.len()
    );
    if stream.write_all(head.as_bytes()).is_ok() {
        let _ = stream.write_all(&r.body);
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_handler() -> Handler {
        Arc::new(|path: &str| match path {
            "/metrics" => Response::ok("text/plain; version=0.0.4", "m 1\n"),
            "/health" => Response::json("{\"healthy\":true}"),
            _ => Response::status(404, "not found\n"),
        })
    }

    #[test]
    fn serves_routes_and_strips_query_strings() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        let out = request(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(out.contains("Connection: close"));
        assert!(out.ends_with("m 1\n"), "{out}");
        let out = request(addr, "GET /health?verbose=1 HTTP/1.1\r\n\r\n");
        assert!(out.contains("{\"healthy\":true}"), "{out}");
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        let out = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");
        let out = request(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn concurrent_scrapes_all_answer() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|_| thread::spawn(move || request(addr, "GET /metrics HTTP/1.1\r\n\r\n")))
            .collect();
        for t in threads {
            let out = t.join().unwrap();
            assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        }
    }

    /// Like [`request`], but tolerant of mid-write resets: a server
    /// that rejects early and closes may RST before the client
    /// finishes writing, which is exactly the behavior under test.
    fn try_request(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        // A bare CRLF has no method or target.
        let out = request(addr, "\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        // An unterminated request line longer than the bound. The 400
        // may be lost to a reset if the server answers mid-write; the
        // load-bearing assertion is the liveness check below.
        let out = try_request(addr, "A".repeat(9 * 1024).as_bytes());
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 400"), "{out}");
        // A header flood past the drain bound.
        let mut flood = String::from("GET /metrics HTTP/1.1\r\n");
        for i in 0..4096 {
            flood.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        flood.push_str("\r\n");
        let out = try_request(addr, flood.as_bytes());
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 400"), "{out}");
        // Non-UTF-8 garbage still gets an answer instead of a silent
        // close.
        let out = try_request(addr, b"\xff\xfe\xfd /x HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 4"), "{out}");
        // The server is still alive and serving after all of that.
        let out = request(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    }

    #[test]
    fn no_request_line_closes_cleanly() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        // Connect and shut down the write half without sending a byte:
        // the connection thread must exit (clean close), not hang or
        // panic, and the server must keep serving.
        let s = TcpStream::connect(addr).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        drop(s);
        let out = request(addr, "GET /health HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    }

    #[test]
    fn non_get_with_body_is_405() {
        let server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        let out = request(
            addr,
            "POST /metrics HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world",
        );
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
        let out = request(addr, "PUT /health HTTP/1.1\r\n\r\n{\"x\": 1}");
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn shutdown_joins_accept_loop() {
        let mut server = ObsServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Connecting after shutdown either fails outright or gets no
        // response; either way the accept thread is gone.
        let _ = TcpStream::connect(addr);
    }
}

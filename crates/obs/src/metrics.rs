//! The three metric primitives: counters, gauges and fixed-bucket
//! histograms. All hot-path operations are single atomic RMWs — no
//! locks, no allocation — so engines can record from any thread at
//! nanosecond cost.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter in place (existing handles stay valid).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time signed value (graph sizes, queue depths, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge in place.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one per power of two of a `u64`
/// value, plus a dedicated zero bucket.
pub const BUCKETS: usize = 65;

/// A lock-free histogram with fixed power-of-two buckets, built for
/// latencies in nanoseconds and length distributions. Bucket `0`
/// holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Read-only copy of a histogram's state plus derived statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Estimated 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Estimated 90th percentile (bucket upper bound).
    pub p90: u64,
    /// Estimated 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot (individual fields are read
    /// atomically; cross-field skew under concurrent writes is
    /// acceptable for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let observed_min = self.min.load(Ordering::Relaxed);
        let observed_max = self.max.load(Ordering::Relaxed);
        // Linear interpolation within the power-of-two bucket holding
        // the requested rank: assuming values spread uniformly across
        // the bucket's span beats reporting its upper bound (which
        // inflates every percentile by up to 2x). The interpolation
        // span is the bucket intersected with the observed [min, max]:
        // interpolating across the raw bucket and clamping afterwards
        // collapsed every mid-to-high percentile onto the clamp bound
        // whenever all samples landed in one bucket (the estimate
        // overshot the observed max), so e.g. p50 of {520, 521, 522}
        // reported 522. Narrowing the span first keeps the estimate
        // inside the data: the same p50 now reports the range
        // midpoint-by-rank, 521.
        let pct = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= rank {
                    let est = if i == 0 {
                        0
                    } else {
                        // Bucket i spans [2^(i-1), 2^i - 1], narrowed
                        // to the observed range where they intersect
                        // (under concurrent writes min/max can skew
                        // off the bucket; fall back to the raw bucket
                        // bounds then).
                        let mut lo = 1u64 << (i - 1);
                        let mut hi = Self::bucket_upper(i);
                        if observed_min <= observed_max {
                            lo = lo.max(observed_min).min(hi);
                            hi = hi.min(observed_max).max(lo);
                        }
                        let within = (rank - seen) as f64 / c as f64;
                        lo + ((hi - lo) as f64 * within) as u64
                    };
                    return est.clamp(observed_min.min(observed_max), observed_max);
                }
                seen += c;
            }
            observed_max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        }
    }

    /// Empties the histogram in place (existing handles stay valid).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 >= 1000, "p99 bucket bound covers the max: {}", s.p99);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().min, 0);
    }

    #[test]
    fn percentiles_interpolate_instead_of_reporting_bucket_bounds() {
        // All values identical, landing mid-bucket: the upper-bound
        // rendering used to report 1023 (the [512, 1023] bucket edge);
        // interpolation clamped to the observed range reports the
        // value itself.
        let h = Histogram::new();
        for _ in 0..3 {
            h.record(513);
        }
        let s = h.snapshot();
        assert_eq!(s.p50, 513);
        assert_eq!(s.p99, 513);

        // A uniform spread across one bucket: the median estimate must
        // stay inside the bucket and inside the observed range, not
        // snap to the edge.
        let h = Histogram::new();
        for v in 512..768u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50 >= 512 && s.p50 < 768, "p50={}", s.p50);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn one_bucket_cluster_reports_midpoint_not_clamp_bound() {
        // Regression: {520, 521, 522} all land in the [512, 1023]
        // bucket. Interpolating across the raw bucket put the p50
        // estimate at ~852, which the clamp then snapped to the
        // observed max — p50, p90 and p99 all reported 522.
        // Interpolating across bucket∩[min, max] instead makes p50 the
        // observed-range midpoint.
        let h = Histogram::new();
        for v in [520u64, 521, 522] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50, 521, "p50 is the midpoint of the cluster");
        assert!(s.p50 < s.max, "p50 must not collapse onto the clamp bound");
        assert_eq!(s.p99, 522);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }
}

//! Structured spans: timed regions with parent/child context, stored
//! in a lock-free bounded ring as *wide events* — one record per span
//! carrying everything known about it (identity, parentage, name,
//! monotonic start, duration, recording thread).
//!
//! This is the live-telemetry complement to the aggregate
//! [`Histogram`](crate::Histogram)s: a [`WideSpan`](crate::WideSpan)
//! guard still feeds
//! the latency histogram of the same name (so p50/p99 SLIs come for
//! free), but it *also* deposits a [`SpanRecord`] into the owning
//! registry's [`SpanRing`], from which `/trace` endpoints and
//! rotating trace segments are rendered without ever touching the
//! recording threads.
//!
//! Design constraints, in order:
//!
//! 1. **Recording must be lock-free.** The ring is an array of slots,
//!    each a fixed set of `AtomicU64` words guarded by a sequence
//!    word. Writers claim a ticket with one `fetch_add` and publish
//!    with a release store of the sequence; a reader that observes a
//!    torn slot (sequence changed across its copy, or an in-progress
//!    odd value) simply skips it. No `unsafe`, no mutex, no
//!    allocation on the hot path.
//! 2. **Bounded memory.** The ring overwrites the oldest spans; the
//!    overwritten count is exported so exporters can say "N spans
//!    rotated out" instead of silently truncating.
//! 3. **Cheap names.** Span names are `&'static str` interned once
//!    into a small registry-owned table; records store the 32-bit
//!    name index, so a record is five words.
//!
//! Parent/child context is a thread-local: entering a span makes it
//! the parent of spans opened on the same thread until it drops. The
//! `span!` macro caches the interned name and histogram handle per
//! call site, so steady-state recording is two clock reads, a handful
//! of relaxed atomics, and one histogram record.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default span-ring capacity (records retained before overwrite).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// One completed span, resolved for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Ring ticket (monotonic per registry; survives overwrites).
    pub seq: u64,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id (0 when the span was a root).
    pub parent: u64,
    /// Interned span name.
    pub name: &'static str,
    /// Start, nanoseconds since the registry epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
}

/// Words per slot: seq + (id, parent, name|tid, t0, dur).
const WORDS: usize = 5;

struct Slot {
    /// 0 = never written; odd = write in progress; even, nonzero =
    /// `(ticket + 1) << 1` of the resident record.
    seq: AtomicU64,
    data: [AtomicU64; WORDS],
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            data: [const { AtomicU64::new(0) }; WORDS],
        }
    }
}

/// The lock-free bounded span ring.
pub struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    /// Writes abandoned because another writer held the slot (ring
    /// wrapped within one in-flight write) — drops, not corruption.
    contended: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// A ring retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(1);
        SpanRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans no longer retrievable: overwritten by the capacity bound
    /// or abandoned to a contended slot.
    pub fn dropped(&self) -> u64 {
        let recorded = self.recorded();
        recorded.saturating_sub(self.slots.len() as u64) + self.contended.load(Ordering::Relaxed)
    }

    /// Deposits one record. Lock-free; on the rare slot contention
    /// (the ring wrapped around faster than one write completed) the
    /// record is dropped and counted, never torn.
    pub fn record(&self, id: u64, parent: u64, name_id: u32, tid: u64, t0_ns: u64, dur_ns: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let stable = (ticket + 1) << 1;
        let cur = slot.seq.load(Ordering::Acquire);
        if cur & 1 == 1
            || slot
                .seq
                .compare_exchange(cur, stable | 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.data[0].store(id, Ordering::Relaxed);
        slot.data[1].store(parent, Ordering::Relaxed);
        slot.data[2].store(
            (u64::from(name_id) << 32) | (tid & 0xffff_ffff),
            Ordering::Relaxed,
        );
        slot.data[3].store(t0_ns, Ordering::Relaxed);
        slot.data[4].store(dur_ns, Ordering::Relaxed);
        slot.seq.store(stable, Ordering::Release);
    }

    /// Copies out every retained span, oldest first. `names` is the
    /// registry's interned name table; a record whose slot was torn by
    /// a concurrent overwrite is skipped (it will have been recounted
    /// as dropped by the next collect).
    pub fn collect(&self, names: &[&'static str]) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let words: [u64; WORDS] = std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // overwritten mid-copy
            }
            let name_id = (words[2] >> 32) as usize;
            out.push(SpanRecord {
                seq: (s1 >> 1) - 1,
                id: words[0],
                parent: words[1],
                name: names.get(name_id).copied().unwrap_or("?"),
                tid: words[2] & 0xffff_ffff,
                t0_ns: words[3],
                dur_ns: words[4],
            });
        }
        out.sort_unstable_by_key(|r| r.seq);
        out
    }

    /// Empties the ring in place (tickets keep counting, so `seq`
    /// values never repeat across a reset).
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        self.contended.store(0, Ordering::Relaxed);
    }
}

/// Process-unique span ids; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for trace lanes.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
}

/// The current thread's dense trace id (assigned on first use).
pub fn current_tid() -> u64 {
    THREAD_TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// The id of the innermost live span on this thread (0 = none).
pub fn current_span_id() -> u64 {
    CURRENT_SPAN.with(Cell::get)
}

/// Allocates a fresh span id and pushes it as the thread's current
/// span, returning `(id, parent)`. Callers must pair with
/// [`pop_span`]; [`WideSpan`] does both.
pub(crate) fn push_span() -> (u64, u64) {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.with(|c| c.replace(id));
    (id, parent)
}

pub(crate) fn pop_span(parent: u64) {
    CURRENT_SPAN.with(|c| c.set(parent));
}

/// Renders span records as Chrome trace-event JSON (`"X"` complete
/// events, microsecond timestamps), openable in Perfetto or
/// `chrome://tracing`. `dropped` is reported in metadata so rotated
/// spans are visible as a count, not an absence.
pub fn chrome_trace(records: &[SpanRecord], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\"traceEvents\": [\n");
    let _ = write!(
        s,
        " {{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"adya telemetry ({dropped} spans rotated out)\"}}}}"
    );
    for r in records {
        let _ = write!(
            s,
            ",\n {{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
             \"ts\": {}, \"dur\": {}, \"args\": {{\"id\": {}, \"parent\": {}, \"seq\": {}}}}}",
            r.tid,
            crate::json::esc(r.name),
            r.t0_ns / 1000,
            (r.dur_ns / 1000).max(1),
            r.id,
            r.parent,
            r.seq
        );
    }
    s.push_str("\n]}\n");
    s
}

/// Renders span records as wide-event NDJSON-in-an-array: one JSON
/// object per span with every known field, for log pipelines that
/// prefer self-describing events over trace viewers.
pub fn spans_json(records: &[SpanRecord], dropped: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{");
    let _ = write!(s, "\"dropped\": {dropped}, \"spans\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"seq\": {}, \"id\": {}, \"parent\": {}, \"name\": \"{}\", \
             \"t0_ns\": {}, \"dur_ns\": {}, \"tid\": {}}}",
            r.seq,
            r.id,
            r.parent,
            crate::json::esc(r.name),
            r.t0_ns,
            r.dur_ns,
            r.tid
        );
    }
    s.push_str("]}");
    s
}

/// A short stable fingerprint of arbitrary text (64-bit FNV-1a folded
/// to 32 bits, rendered `w` + 8 hex digits). Used as the *witness id*
/// linking a fired phenomenon across planes: the streaming verdict,
/// the `/health` anomaly exemplar and the forensic witness all derive
/// their id from the same canonical cycle text, so equal ids mean the
/// same cited evidence.
pub fn stable_id(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("w{:08x}", (h ^ (h >> 32)) as u32)
}

/// Canonical witness id for a phenomenon over a DSG cycle: the node
/// sequence is rotated to begin at the smallest transaction id (a
/// cycle has no distinguished start, and the online and forensic
/// checkers discover the same cycle from different entry points),
/// rendered `KIND:T<a>>T<b>>…`, and folded through [`stable_id`].
/// Both `adya-online` verdict exemplars and `adya-forensics`
/// witnesses derive their ids here, so a fired G1c/G2 links straight
/// to its forensic witness when both saw the same cycle. Falls back
/// to hashing `KIND:<detail>` for the cycle-less phenomena.
pub fn witness_id(kind: &str, cycle_txns: &[u64], detail: &str) -> String {
    use std::fmt::Write as _;
    if cycle_txns.is_empty() {
        return stable_id(&format!("{kind}:{detail}"));
    }
    let pivot = cycle_txns
        .iter()
        .enumerate()
        .min_by_key(|(_, &t)| t)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut sig = format!("{kind}:");
    for i in 0..cycle_txns.len() {
        if i > 0 {
            sig.push('>');
        }
        let _ = write!(sig, "T{}", cycle_txns[(pivot + i) % cycle_txns.len()]);
    }
    stable_id(&sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.record(i + 1, 0, 0, 1, i * 100, 10);
        }
        let names = ["work"];
        let got = ring.collect(&names);
        assert_eq!(got.len(), 4);
        assert_eq!(got.first().unwrap().seq, 6);
        assert_eq!(got.last().unwrap().seq, 9);
        assert_eq!(got.last().unwrap().id, 10);
        assert_eq!(got.last().unwrap().name, "work");
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.recorded(), 10);
        ring.reset();
        assert!(ring.collect(&names).is_empty());
    }

    #[test]
    fn ring_is_safe_under_concurrent_writers() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    r.record(t * 10_000 + i + 1, 0, 0, t, i, 1);
                }
            }));
        }
        let names = ["n"];
        for _ in 0..50 {
            let _ = ring.collect(&names); // readers race the writers
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = ring.collect(&names);
        assert!(got.len() <= 64);
        assert!(!got.is_empty());
        // Retained records are untorn: each slot's payload matches a
        // value some writer actually produced (id encodes writer+i).
        for r in &got {
            assert_eq!(r.t0_ns, (r.id - 1) % 10_000);
        }
        assert_eq!(ring.recorded(), 4000);
    }

    #[test]
    fn chrome_trace_and_wide_json_shapes() {
        let recs = vec![SpanRecord {
            seq: 0,
            id: 7,
            parent: 0,
            name: "ingest \"q\"",
            t0_ns: 2000,
            dur_ns: 1500,
            tid: 3,
        }];
        let t = chrome_trace(&recs, 2);
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("\"ph\": \"X\""));
        assert!(t.contains("\"ts\": 2"));
        assert!(t.contains("2 spans rotated out"));
        assert!(t.contains("ingest \\\"q\\\""), "{t}");
        let j = spans_json(&recs, 2);
        assert!(j.contains("\"dropped\": 2"));
        assert!(j.contains("\"dur_ns\": 1500"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn witness_ids_are_rotation_invariant() {
        // The same cycle entered at different nodes yields one id…
        let a = witness_id("G1c", &[3, 1, 2], "");
        let b = witness_id("G1c", &[1, 2, 3], "");
        let c = witness_id("G1c", &[2, 3, 1], "");
        assert_eq!(a, b);
        assert_eq!(b, c);
        // …but a different cycle or kind does not.
        assert_ne!(a, witness_id("G1c", &[1, 3, 2], ""));
        assert_ne!(a, witness_id("G2", &[1, 2, 3], ""));
        // Cycle-less phenomena hash the detail text.
        assert_eq!(
            witness_id("G1a", &[], "T2 read aborted x[1]"),
            stable_id("G1a:T2 read aborted x[1]")
        );
    }

    #[test]
    fn stable_ids_are_deterministic_and_distinct() {
        let a = stable_id("G1c:T1>T2");
        assert_eq!(a, stable_id("G1c:T1>T2"));
        assert_ne!(a, stable_id("G1c:T1>T3"));
        assert!(a.starts_with('w') && a.len() == 9, "{a}");
    }
}

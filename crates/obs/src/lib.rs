//! `adya-obs`: a zero-dependency observability substrate for the
//! Adya checker, the concurrency-control engines, and the bench
//! binaries.
//!
//! Three primitives, one registry:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — lock-free
//!   atomics on the hot path, suitable for engine inner loops.
//! - **Spans** ([`SpanTimer`], [`time!`]) — RAII timers that feed
//!   latency histograms, used for the checker's per-phase timings.
//! - **Journal** ([`Journal`], [`Event`]) — a bounded ring of
//!   structured events for "what happened, in order" debugging.
//!
//! Everything lives in a [`Registry`]. Library code records against
//! the process-wide [`global()`] registry through the `counter!` /
//! `gauge!` / `histogram!` / `time!` macros, which cache the metric
//! handle in a per-call-site static so steady-state recording never
//! touches the registry lock. Frontends call [`Registry::snapshot`]
//! (or [`Registry::to_json`]) to export, and [`Registry::reset`] to
//! take per-run deltas; reset zeroes metrics in place so cached
//! handles stay valid.
//!
//! JSON export is hand-rolled ([`json::JsonWriter`]) — the sanctioned
//! dependency set has no serializer and the shapes here are small.

#![warn(missing_docs)]

pub mod http;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod spans;
pub mod trace;

pub use http::{ObsServer, Response};
pub use journal::{Event, Field, Journal};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{labeled, Registry, Snapshot, SpanTimer, WideSpan};
pub use spans::{chrome_trace, spans_json, stable_id, witness_id, SpanRecord, SpanRing};
pub use trace::{
    attach_provenance, fmt_trace_id, merge_segments, parse_segment, parse_trace_id, trace_id,
    Stage, Stamp, StampRing, TracePlane, TraceSegment,
};

use std::sync::OnceLock;

/// The process-wide registry used by the `counter!`/`gauge!`/
/// `histogram!`/`time!` macros and by all built-in instrumentation.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Returns the global counter named `$name`, caching the handle in a
/// per-call-site static so repeated hits are a single atomic load
/// plus the recording op.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Returns the global gauge named `$name` (cached per call site).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Returns the global histogram named `$name` (cached per call site).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Times an expression against the global histogram named `$name`,
/// evaluating to the expression's value.
///
/// ```
/// let three = adya_obs::time!("doc.add_ns", 1 + 2);
/// assert_eq!(three, 3);
/// assert_eq!(
///     adya_obs::global().snapshot().histogram("doc.add_ns").unwrap().count,
///     1
/// );
/// ```
#[macro_export]
macro_rules! time {
    ($name:expr, $body:expr) => {{
        let __start = ::std::time::Instant::now();
        let __out = $body;
        $crate::histogram!($name).record(__start.elapsed().as_nanos() as u64);
        __out
    }};
}

/// Opens a structured span named `$name` against the global registry,
/// returning the RAII guard. The span becomes the parent of any span
/// opened on the same thread before the guard drops; on drop it lands
/// in the global span ring as a wide event and records its duration
/// into the histogram of the same name. The interned name id and
/// histogram handle are cached per call site.
///
/// ```
/// {
///     let _ev = adya_obs::span!("doc.outer_ns");
///     let _child = adya_obs::span!("doc.inner_ns");
/// }
/// let spans = adya_obs::global().span_records();
/// let outer = spans.iter().find(|s| s.name == "doc.outer_ns").unwrap();
/// let inner = spans.iter().find(|s| s.name == "doc.inner_ns").unwrap();
/// assert_eq!(inner.parent, outer.id);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static CACHED: ::std::sync::OnceLock<(u32, ::std::sync::Arc<$crate::Histogram>)> =
            ::std::sync::OnceLock::new();
        let (__name_id, __hist) = CACHED.get_or_init(|| {
            let r = $crate::global();
            (r.span_name_id($name), r.histogram($name))
        });
        $crate::global().wide_span_cached(*__name_id, ::std::sync::Arc::clone(__hist))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_hit_the_global_registry() {
        super::global().reset();
        counter!("lib.test.hits").inc();
        counter!("lib.test.hits").inc();
        gauge!("lib.test.depth").set(3);
        let v = time!("lib.test.span_ns", { 2 + 2 });
        assert_eq!(v, 4);
        let snap = super::global().snapshot();
        assert_eq!(snap.counter("lib.test.hits"), 2);
        assert_eq!(snap.gauge("lib.test.depth"), 3);
        assert_eq!(snap.histogram("lib.test.span_ns").unwrap().count, 1);
    }
}

//! Cross-node per-verdict tracing: every sampled event gets a trace
//! context at the tap and a monotonic timestamp at each stage it
//! crosses — tap → ring → sequencer → batch apply → verdict emit →
//! durable log append → replication publish → follower ack — so "why
//! was this verdict slow?" decomposes into per-stage deltas instead of
//! one opaque end-to-end number.
//!
//! The design mirrors the span plane ([`SpanRing`](crate::SpanRing)):
//!
//! - **Stamping is lock-free.** A [`StampRing`] slot is a fixed set of
//!   `AtomicU64` words guarded by a sequence word; writers claim a
//!   ticket with one `fetch_add` and publish with a release store. A
//!   torn slot is skipped by readers and counted as dropped.
//! - **Sampling is deterministic.** One in `sample_every` events by
//!   dense sequence number, so the leader and a follower replaying the
//!   same durable stream pick the *same* events, and the trace id —
//!   FNV-1a over `(scope, seq)` — is identical on both nodes. That is
//!   what lets [`merge_segments`] join per-node segments into one flow
//!   without any coordination protocol.
//! - **Per-node clocks stay local.** Every [`TracePlane`] timestamps
//!   against its own monotonic epoch; the offline merge estimates a
//!   per-node offset from the replication send/receive pairs of shared
//!   traces (a zero-delay estimate: the median of `send − receive`
//!   over shared traces), good enough to render both lanes on one
//!   timeline.
//!
//! A `TracePlane` is deliberately *instantiable* rather than a process
//! global: each server (and each test) owns its own plane, so two
//! in-process servers never interleave stamps. Only the per-stage
//! latency histograms (`trace.stage_ns{stage=…}`) aggregate into the
//! global registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::Histogram;

/// Default 1-in-N sampling cadence for trace stamping.
pub const DEFAULT_TRACE_SAMPLE: u64 = 32;

/// Default stamp-ring capacity (stamps retained before overwrite).
pub const DEFAULT_STAMP_CAPACITY: usize = 8192;

/// Bound on the per-trace first/last bookkeeping map; crossing it
/// clears the map (losing only in-flight delta baselines, never
/// stamps).
const LAST_MAP_MAX: usize = 4096;

/// A pipeline stage a traced event is stamped at, in canonical
/// pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Event parsed at the ingest tap (client line or producer).
    Tap = 0,
    /// Event entered the hand-off ring toward the sequencer.
    Ring = 1,
    /// Sequencer popped the event in dense order.
    Seq = 2,
    /// Batched checker application began for the event's batch.
    Apply = 3,
    /// The commit verdict was emitted.
    Verdict = 4,
    /// The event's record reached the durable session log.
    Log = 5,
    /// The record's replication mutation was written to a follower.
    Replicate = 6,
    /// A durability barrier covering the record was acknowledged.
    Ack = 7,
}

impl Stage {
    /// Every stage, in canonical pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Tap,
        Stage::Ring,
        Stage::Seq,
        Stage::Apply,
        Stage::Verdict,
        Stage::Log,
        Stage::Replicate,
        Stage::Ack,
    ];

    /// The wire/export name of the stage.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Tap => "tap",
            Stage::Ring => "ring",
            Stage::Seq => "seq",
            Stage::Apply => "apply",
            Stage::Verdict => "verdict",
            Stage::Log => "log",
            Stage::Replicate => "replicate",
            Stage::Ack => "ack",
        }
    }

    /// Parses a wire/export name back into a stage.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }

    fn from_u8(v: u64) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// The trace id of event `seq` within `scope` (a session name or
/// stream label): 64-bit FNV-1a, never zero. Both ends of a
/// replication link derive the same id from the same durable sequence
/// number, which is what joins their segments at merge time.
pub fn trace_id(scope: &str, seq: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in scope.as_bytes() {
        eat(*b);
    }
    for b in seq.to_le_bytes() {
        eat(b);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Renders a trace id for the wire: `t` + 16 hex digits.
pub fn fmt_trace_id(id: u64) -> String {
    format!("t{id:016x}")
}

/// Parses a wire trace id (`t` + hex digits).
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let hex = s.strip_prefix('t')?;
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One per-stage timestamp of one traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Trace id ([`trace_id`]).
    pub trace: u64,
    /// Stage stamped.
    pub stage: Stage,
    /// Nanoseconds since the owning plane's epoch.
    pub t_ns: u64,
}

/// Words per slot: seq + (trace, stage, t_ns).
const WORDS: usize = 3;

struct Slot {
    /// 0 = never written; odd = in progress; even = resident.
    seq: AtomicU64,
    data: [AtomicU64; WORDS],
}

/// The lock-free bounded stamp ring (same seqlock discipline as
/// [`SpanRing`](crate::SpanRing)).
pub struct StampRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    contended: AtomicU64,
}

impl std::fmt::Debug for StampRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StampRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl StampRing {
    /// A ring retaining at most `capacity` stamps.
    pub fn new(capacity: usize) -> StampRing {
        StampRing {
            slots: (0..capacity.max(1))
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: [const { AtomicU64::new(0) }; WORDS],
                })
                .collect(),
            head: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Total stamps ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Stamps no longer retrievable (overwritten or contended away).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
            + self.contended.load(Ordering::Relaxed)
    }

    /// Deposits one stamp; lock-free, dropped (never torn) on the rare
    /// slot contention.
    pub fn record(&self, trace: u64, stage: Stage, t_ns: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let stable = (ticket + 1) << 1;
        let cur = slot.seq.load(Ordering::Acquire);
        if cur & 1 == 1
            || slot
                .seq
                .compare_exchange(cur, stable | 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.data[0].store(trace, Ordering::Relaxed);
        slot.data[1].store(stage as u64, Ordering::Relaxed);
        slot.data[2].store(t_ns, Ordering::Relaxed);
        slot.seq.store(stable, Ordering::Release);
    }

    /// Copies out every retained stamp, oldest first; torn slots are
    /// skipped.
    pub fn collect(&self) -> Vec<Stamp> {
        let mut out: Vec<(u64, Stamp)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue;
            }
            let words: [u64; WORDS] = std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            let Some(stage) = Stage::from_u8(words[1]) else {
                continue;
            };
            out.push((
                (s1 >> 1) - 1,
                Stamp {
                    trace: words[0],
                    stage,
                    t_ns: words[2],
                },
            ));
        }
        out.sort_unstable_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, s)| s).collect()
    }
}

/// One node's tracing plane: sampling policy, monotonic epoch, the
/// stamp ring, and the per-stage latency histograms it feeds.
pub struct TracePlane {
    node: String,
    role: Mutex<String>,
    enabled: AtomicBool,
    sample_every: AtomicU64,
    epoch: Instant,
    ring: StampRing,
    /// Per-trace `(first, last)` stamp times, for stage deltas and
    /// end-to-end latency. Bounded by [`LAST_MAP_MAX`].
    window: Mutex<HashMap<u64, (u64, u64)>>,
    /// `trace.stage_ns{stage=…}` histograms, indexed by stage.
    stage_ns: [Arc<Histogram>; 8],
    /// Tap→ack latency of traces that reached `Ack` on this node.
    end_to_end_ns: Arc<Histogram>,
}

impl std::fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracePlane")
            .field("node", &self.node)
            .field("role", &self.role())
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .finish()
    }
}

impl TracePlane {
    /// A plane for `node` acting as `role` (`leader`, `follower`,
    /// `checker`…), sampling 1-in-[`DEFAULT_TRACE_SAMPLE`].
    pub fn new(node: &str, role: &str) -> TracePlane {
        let reg = crate::global();
        TracePlane {
            node: node.to_string(),
            role: Mutex::new(role.to_string()),
            enabled: AtomicBool::new(true),
            sample_every: AtomicU64::new(DEFAULT_TRACE_SAMPLE),
            epoch: Instant::now(),
            ring: StampRing::new(DEFAULT_STAMP_CAPACITY),
            window: Mutex::new(HashMap::new()),
            stage_ns: std::array::from_fn(|i| {
                reg.histogram(&crate::labeled(
                    "trace.stage_ns",
                    &[("stage", Stage::ALL[i].as_str())],
                ))
            }),
            end_to_end_ns: reg.histogram("trace.end_to_end_ns"),
        }
    }

    /// The node name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The current role lane (mutable: promotion flips a follower).
    pub fn role(&self) -> String {
        self.role.lock().unwrap().clone()
    }

    /// Changes the role lane (used at follower promotion).
    pub fn set_role(&self, role: &str) {
        *self.role.lock().unwrap() = role.to_string();
    }

    /// Enables or disables stamping; disabled planes sample nothing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// `true` when stamping is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the 1-in-N sampling cadence (0 is clamped to 1).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// The sampling cadence.
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Deterministic sampling decision for dense event sequence `seq`.
    pub fn sampled(&self, seq: u64) -> bool {
        self.enabled() && seq.is_multiple_of(self.sample_every())
    }

    /// Nanoseconds since this plane's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Stamps `trace` at `stage`, now.
    pub fn stamp(&self, trace: u64, stage: Stage) {
        self.stamp_at(trace, stage, self.now_ns());
    }

    /// Stamps `trace` at `stage` with an explicit plane-epoch time
    /// (used when the stamp point and the clock read are separated,
    /// e.g. a batch applied after its arrival times were taken).
    pub fn stamp_at(&self, trace: u64, stage: Stage, t_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.ring.record(trace, stage, t_ns);
        let mut w = self.window.lock().unwrap();
        if w.len() > LAST_MAP_MAX {
            w.clear();
        }
        match w.entry(trace) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (first, last) = *e.get();
                self.stage_ns[stage as usize].record(t_ns.saturating_sub(last));
                if stage == Stage::Ack {
                    self.end_to_end_ns.record(t_ns.saturating_sub(first));
                }
                e.insert((first, last.max(t_ns)));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.stage_ns[stage as usize].record(0);
                e.insert((t_ns, t_ns));
            }
        }
    }

    /// Every retained stamp, oldest first.
    pub fn collect(&self) -> Vec<Stamp> {
        self.ring.collect()
    }

    /// Stamps lost to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Renders this node's trace segment: the document `/trace` serves
    /// and `adya-check trace-merge` joins.
    pub fn segment_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"node\": \"{}\", \"role\": \"{}\", \"dropped\": {}, \"stamps\": [",
            crate::json::esc(&self.node),
            crate::json::esc(&self.role()),
            self.dropped()
        );
        for (i, st) in self.collect().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"trace\": \"{}\", \"stage\": \"{}\", \"t_ns\": {}}}",
                fmt_trace_id(st.trace),
                st.stage.as_str(),
                st.t_ns
            );
        }
        s.push_str("]}");
        s
    }
}

/// A parsed per-node trace segment (see
/// [`TracePlane::segment_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSegment {
    /// Node name.
    pub node: String,
    /// Role lane at export time.
    pub role: String,
    /// Stamps the ring had already rotated out.
    pub dropped: u64,
    /// Retained stamps, oldest first.
    pub stamps: Vec<Stamp>,
}

/// Parses a trace segment — either the bare [`segment_json`] document
/// or a `/trace` response that embeds one under a `"provenance"` key.
///
/// [`segment_json`]: TracePlane::segment_json
pub fn parse_segment(text: &str) -> Result<TraceSegment, String> {
    let text = match extract_provenance(text) {
        Some(inner) => inner,
        None => text,
    };
    let str_field = |key: &str| -> Option<&str> {
        let pat = format!("\"{key}\": \"");
        let at = text.find(&pat)? + pat.len();
        let rest = &text[at..];
        Some(&rest[..rest.find('"')?])
    };
    let node = str_field("node")
        .ok_or("segment has no \"node\" field")?
        .to_string();
    let role = str_field("role")
        .ok_or("segment has no \"role\" field")?
        .to_string();
    let dropped = {
        let pat = "\"dropped\": ";
        let at = text.find(pat).ok_or("segment has no \"dropped\" field")? + pat.len();
        let rest = &text[at..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end]
            .parse::<u64>()
            .map_err(|_| "bad \"dropped\" value".to_string())?
    };
    let mut stamps = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("{\"trace\": \"") {
        let obj = &rest[at..];
        let end = obj.find('}').ok_or("unterminated stamp object")?;
        let obj = &obj[..=end];
        let grab = |key: &str| -> Result<&str, String> {
            let pat = format!("\"{key}\": ");
            let at = obj
                .find(&pat)
                .ok_or_else(|| format!("stamp has no {key:?}"))?
                + pat.len();
            Ok(&obj[at..])
        };
        let trace_txt = grab("trace")?;
        let trace_txt = trace_txt
            .strip_prefix('"')
            .and_then(|r| r.split('"').next())
            .ok_or("bad trace value")?;
        let trace = parse_trace_id(trace_txt).ok_or_else(|| format!("bad id {trace_txt:?}"))?;
        let stage_txt = grab("stage")?
            .strip_prefix('"')
            .and_then(|r| r.split('"').next())
            .ok_or("bad stage value")?;
        let stage = Stage::parse(stage_txt).ok_or_else(|| format!("bad stage {stage_txt:?}"))?;
        let t_txt = grab("t_ns")?;
        let t_end = t_txt
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(t_txt.len());
        let t_ns = t_txt[..t_end]
            .parse::<u64>()
            .map_err(|_| "bad t_ns value".to_string())?;
        stamps.push(Stamp { trace, stage, t_ns });
        rest = &rest[at + end + 1..];
    }
    Ok(TraceSegment {
        node,
        role,
        dropped,
        stamps,
    })
}

/// Finds the `"provenance"` object embedded in a `/trace` response and
/// returns its exact byte range, by brace matching (segment documents
/// contain no braces inside strings).
fn extract_provenance(text: &str) -> Option<&str> {
    let at = text.find("\"provenance\": {")? + "\"provenance\": ".len();
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(at) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&text[at..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splices a trace segment into a Chrome-trace document as its
/// `"provenance"` key, so one `/trace` response carries both the span
/// view and the per-verdict stamp segment.
pub fn attach_provenance(chrome: &str, segment: &str) -> String {
    let trimmed = chrome.trim_end();
    match trimmed.strip_suffix('}') {
        Some(head) => format!("{head}, \"provenance\": {segment}}}\n"),
        None => chrome.to_string(),
    }
}

/// Merges per-node trace segments into one Chrome/Perfetto document:
/// one process lane per node (named `node (role)`), one track per
/// trace, `X` slices between consecutive stamps (named `tap->ring`
/// etc.), and flow arrows (`s`/`f`) from the reference node's
/// `replicate` stamp to each other node's first stamp of the same
/// trace.
///
/// Clocks: the segment whose role is `leader` (else the first) is the
/// reference timeline; every other node's offset is the median of
/// `reference replicate-send − node's first receive` over shared
/// traces (a zero-delay estimate, reported under `"clock_offsets"`).
/// The document also carries a machine-checkable `"traces"` summary:
/// per trace, the union of stages seen and the nodes that saw it.
pub fn merge_segments(segs: &[TraceSegment]) -> String {
    use std::fmt::Write as _;
    let refi = segs.iter().position(|s| s.role == "leader").unwrap_or(0);
    // Per-segment, per-trace stamp lists.
    let by_trace: Vec<HashMap<u64, Vec<Stamp>>> = segs
        .iter()
        .map(|seg| {
            let mut m: HashMap<u64, Vec<Stamp>> = HashMap::new();
            for st in &seg.stamps {
                m.entry(st.trace).or_default().push(*st);
            }
            for v in m.values_mut() {
                v.sort_by_key(|s| (s.t_ns, s.stage));
            }
            m
        })
        .collect();
    // The reference anchor per trace: its replicate stamp (the send
    // instant) when present, else its last stamp.
    let ref_anchor = |trace: u64| -> Option<u64> {
        let stamps = by_trace.get(refi)?.get(&trace)?;
        stamps
            .iter()
            .find(|s| s.stage == Stage::Replicate)
            .or(stamps.last())
            .map(|s| s.t_ns)
    };
    let offsets: Vec<i64> = (0..segs.len())
        .map(|i| {
            if i == refi {
                return 0;
            }
            let mut deltas: Vec<i64> = by_trace[i]
                .iter()
                .filter_map(|(trace, stamps)| {
                    let anchor = ref_anchor(*trace)?;
                    let first = stamps.first()?.t_ns;
                    Some(anchor as i64 - first as i64)
                })
                .collect();
            if deltas.is_empty() {
                return 0;
            }
            deltas.sort_unstable();
            deltas[deltas.len() / 2]
        })
        .collect();
    // Shift the merged timeline so its earliest adjusted stamp is 0.
    let mut t_min = i64::MAX;
    for (i, m) in by_trace.iter().enumerate() {
        for stamps in m.values() {
            for s in stamps {
                t_min = t_min.min(s.t_ns as i64 + offsets[i]);
            }
        }
    }
    if t_min == i64::MAX {
        t_min = 0;
    }
    let adj = |i: usize, t_ns: u64| -> i64 { t_ns as i64 + offsets[i] - t_min };

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first_ev = true;
    let push = |out: &mut String, first_ev: &mut bool, ev: String| {
        if !*first_ev {
            out.push_str(",\n");
        }
        *first_ev = false;
        out.push(' ');
        out.push_str(&ev);
    };
    for (i, seg) in segs.iter().enumerate() {
        push(
            &mut out,
            &mut first_ev,
            format!(
                "{{\"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"{} ({})\"}}}}",
                i + 1,
                crate::json::esc(&seg.node),
                crate::json::esc(&seg.role)
            ),
        );
        push(
            &mut out,
            &mut first_ev,
            format!(
                "{{\"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"name\": \"process_sort_index\", \
                 \"args\": {{\"sort_index\": {}}}}}",
                i + 1,
                if i == refi { 0 } else { i + 1 }
            ),
        );
    }
    // Deterministic track order: traces sorted by id within a node.
    let mut all_traces: Vec<u64> = by_trace
        .iter()
        .flat_map(|m| m.keys().copied())
        .collect::<std::collections::BTreeSet<u64>>()
        .into_iter()
        .collect();
    all_traces.sort_unstable();
    for (i, m) in by_trace.iter().enumerate() {
        for (tid0, trace) in all_traces.iter().enumerate() {
            let Some(stamps) = m.get(trace) else {
                continue;
            };
            let tid = tid0 + 1;
            for pair in stamps.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                push(
                    &mut out,
                    &mut first_ev,
                    format!(
                        "{{\"ph\": \"X\", \"pid\": {}, \"tid\": {tid}, \
                         \"name\": \"{}->{}\", \"ts\": {}, \"dur\": {}, \
                         \"args\": {{\"trace\": \"{}\"}}}}",
                        i + 1,
                        a.stage.as_str(),
                        b.stage.as_str(),
                        adj(i, a.t_ns) / 1000,
                        ((adj(i, b.t_ns) - adj(i, a.t_ns)) / 1000).max(1),
                        fmt_trace_id(*trace)
                    ),
                );
            }
            if let Some(last) = stamps.last() {
                push(
                    &mut out,
                    &mut first_ev,
                    format!(
                        "{{\"ph\": \"i\", \"pid\": {}, \"tid\": {tid}, \"s\": \"t\", \
                         \"name\": \"{}\", \"ts\": {}, \
                         \"args\": {{\"trace\": \"{}\"}}}}",
                        i + 1,
                        last.stage.as_str(),
                        adj(i, last.t_ns) / 1000,
                        fmt_trace_id(*trace)
                    ),
                );
            }
        }
    }
    // Flow arrows: reference node's anchor → every other node's first
    // stamp of the same trace.
    for (i, m) in by_trace.iter().enumerate() {
        if i == refi {
            continue;
        }
        for (tid0, trace) in all_traces.iter().enumerate() {
            let (Some(stamps), Some(anchor)) = (m.get(trace), ref_anchor(*trace)) else {
                continue;
            };
            let Some(first) = stamps.first() else {
                continue;
            };
            let tid = tid0 + 1;
            let flow_id = (*trace as u32) ^ ((*trace >> 32) as u32);
            push(
                &mut out,
                &mut first_ev,
                format!(
                    "{{\"ph\": \"s\", \"pid\": {}, \"tid\": {tid}, \"cat\": \"repl\", \
                     \"name\": \"verdict-flow\", \"id\": {flow_id}, \"ts\": {}}}",
                    refi + 1,
                    adj(refi, anchor) / 1000
                ),
            );
            push(
                &mut out,
                &mut first_ev,
                format!(
                    "{{\"ph\": \"f\", \"pid\": {}, \"tid\": {tid}, \"cat\": \"repl\", \
                     \"name\": \"verdict-flow\", \"id\": {flow_id}, \"bp\": \"e\", \
                     \"ts\": {}}}",
                    i + 1,
                    adj(i, first.t_ns) / 1000
                ),
            );
        }
    }
    out.push_str("\n],\n\"clock_offsets\": {");
    for (i, seg) in segs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", crate::json::esc(&seg.node), offsets[i]);
    }
    let total_dropped: u64 = segs.iter().map(|s| s.dropped).sum();
    let _ = write!(out, "}},\n\"dropped\": {total_dropped},\n\"traces\": [");
    for (k, trace) in all_traces.iter().enumerate() {
        if k > 0 {
            out.push_str(", ");
        }
        let mut stages: Vec<Stage> = Vec::new();
        let mut nodes: Vec<&str> = Vec::new();
        for (i, m) in by_trace.iter().enumerate() {
            if let Some(stamps) = m.get(trace) {
                nodes.push(&segs[i].node);
                for s in stamps {
                    if !stages.contains(&s.stage) {
                        stages.push(s.stage);
                    }
                }
            }
        }
        stages.sort_unstable();
        let stages = stages
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(",");
        nodes.sort_unstable();
        nodes.dedup();
        let nodes = nodes
            .iter()
            .map(|n| crate::json::esc(n))
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(
            out,
            "{{\"trace\": \"{}\", \"nodes\": \"{nodes}\", \"stages\": \"{stages}\"}}",
            fmt_trace_id(*trace)
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for st in Stage::ALL {
            assert_eq!(Stage::parse(st.as_str()), Some(st));
        }
        assert_eq!(Stage::parse("nope"), None);
        // Canonical order is the pipeline order.
        assert!(Stage::Tap < Stage::Ring && Stage::Replicate < Stage::Ack);
    }

    #[test]
    fn trace_ids_are_stable_and_parse() {
        let a = trace_id("t1", 32);
        assert_eq!(a, trace_id("t1", 32));
        assert_ne!(a, trace_id("t1", 64));
        assert_ne!(a, trace_id("t2", 32));
        assert_ne!(a, 0);
        let s = fmt_trace_id(a);
        assert!(s.starts_with('t') && s.len() == 17, "{s}");
        assert_eq!(parse_trace_id(&s), Some(a));
        assert_eq!(parse_trace_id("w1234"), None);
        assert_eq!(parse_trace_id("t"), None);
        assert_eq!(parse_trace_id("t12zz"), None);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let ring = StampRing::new(4);
        for i in 0..10u64 {
            ring.record(i + 1, Stage::Tap, i * 100);
        }
        let got = ring.collect();
        assert_eq!(got.len(), 4);
        assert_eq!(got.last().unwrap().trace, 10);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn plane_stamps_and_segment_round_trips() {
        let plane = TracePlane::new("n1", "leader");
        plane.set_sample_every(8);
        assert!(plane.sampled(0) && plane.sampled(8) && !plane.sampled(3));
        let id = trace_id("s", 8);
        plane.stamp_at(id, Stage::Tap, 100);
        plane.stamp_at(id, Stage::Apply, 250);
        plane.stamp_at(id, Stage::Ack, 900);
        let seg = parse_segment(&plane.segment_json()).unwrap();
        assert_eq!(seg.node, "n1");
        assert_eq!(seg.role, "leader");
        assert_eq!(seg.dropped, 0);
        assert_eq!(
            seg.stamps,
            vec![
                Stamp {
                    trace: id,
                    stage: Stage::Tap,
                    t_ns: 100
                },
                Stamp {
                    trace: id,
                    stage: Stage::Apply,
                    t_ns: 250
                },
                Stamp {
                    trace: id,
                    stage: Stage::Ack,
                    t_ns: 900
                },
            ]
        );
        // Stage deltas landed in the labelled histograms, end-to-end
        // on ack.
        let snap = crate::global().snapshot();
        let h = snap
            .histogram(&crate::labeled("trace.stage_ns", &[("stage", "apply")]))
            .unwrap();
        assert!(h.count >= 1);
        assert!(snap.histogram("trace.end_to_end_ns").unwrap().count >= 1);
    }

    #[test]
    fn disabled_planes_stamp_nothing() {
        let plane = TracePlane::new("n1", "checker");
        plane.set_enabled(false);
        assert!(!plane.sampled(0));
        plane.stamp(7, Stage::Tap);
        assert!(plane.collect().is_empty());
    }

    #[test]
    fn provenance_extraction_and_attach() {
        let plane = TracePlane::new("n9", "leader");
        plane.stamp_at(3, Stage::Tap, 5);
        let seg = plane.segment_json();
        let chrome = crate::chrome_trace(&[], 0);
        let merged = attach_provenance(&chrome, &seg);
        assert!(merged.contains("\"traceEvents\""));
        let parsed = parse_segment(&merged).unwrap();
        assert_eq!(parsed.node, "n9");
        assert_eq!(parsed.stamps.len(), 1);
    }

    #[test]
    fn merge_joins_lanes_and_reports_offsets() {
        let id = trace_id("t1", 0);
        let leader = TraceSegment {
            node: "a".into(),
            role: "leader".into(),
            dropped: 0,
            stamps: [
                (Stage::Tap, 1000),
                (Stage::Ring, 1100),
                (Stage::Seq, 1200),
                (Stage::Apply, 1300),
                (Stage::Verdict, 1400),
                (Stage::Log, 1500),
                (Stage::Replicate, 2000),
                (Stage::Ack, 9000),
            ]
            .into_iter()
            .map(|(stage, t_ns)| Stamp {
                trace: id,
                stage,
                t_ns,
            })
            .collect(),
        };
        // The follower's clock started later: absolute times are
        // smaller by 500 than the leader's at the same instants.
        let follower = TraceSegment {
            node: "b".into(),
            role: "follower".into(),
            dropped: 2,
            stamps: vec![
                Stamp {
                    trace: id,
                    stage: Stage::Replicate,
                    t_ns: 1500,
                },
                Stamp {
                    trace: id,
                    stage: Stage::Log,
                    t_ns: 1600,
                },
                Stamp {
                    trace: id,
                    stage: Stage::Ack,
                    t_ns: 1700,
                },
            ],
        };
        let merged = merge_segments(&[follower, leader]);
        // Leader is the reference even when listed second.
        assert!(merged.contains("\"a (leader)\""), "{merged}");
        assert!(merged.contains("\"b (follower)\""));
        // Offset maps the follower's 1500 receive onto the leader's
        // 2000 send.
        assert!(merged.contains("\"b\": 500"), "{merged}");
        assert!(merged.contains("\"a\": 0"));
        assert!(merged.contains("\"verdict-flow\""));
        assert!(merged.contains("tap->ring"));
        assert!(merged.contains("\"dropped\": 2"));
        // The machine-checkable summary shows the full stage set and
        // both nodes for the shared trace.
        let all = Stage::ALL
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(",");
        assert!(
            merged.contains(&format!("\"nodes\": \"a,b\", \"stages\": \"{all}\"")),
            "{merged}"
        );
        assert_eq!(merged.matches('{').count(), merged.matches('}').count());
    }
}

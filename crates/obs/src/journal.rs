//! A bounded structured event journal: the "what happened, in order"
//! complement to the aggregate metrics. Events carry typed fields and
//! a timestamp relative to the owning registry's epoch; when the ring
//! is full the oldest events are dropped (and counted).

use std::collections::VecDeque;
use std::fmt;

use parking_lot::Mutex;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::I64(v) => write!(f, "{v}"),
            Field::F64(v) => write!(f, "{v}"),
            Field::Bool(v) => write!(f, "{v}"),
            Field::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives drops).
    pub seq: u64,
    /// Nanoseconds since the registry epoch.
    pub t_ns: u64,
    /// Event name, dot-separated like metric names.
    pub name: String,
    /// Typed payload fields in recording order.
    pub fields: Vec<(String, Field)>,
}

/// The bounded ring of events.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl Journal {
    /// Creates a journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> Journal {
        Journal {
            inner: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, t_ns: u64, name: &str, fields: Vec<(String, Field)>) {
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(Event {
            seq,
            t_ns,
            name: name.to_string(),
            fields,
        });
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// How many events were evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Clears the journal (sequence numbers keep counting).
    pub fn reset(&self) {
        let mut ring = self.inner.lock();
        ring.events.clear();
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_fields() {
        let j = Journal::new(8);
        j.record(5, "a", vec![("x".into(), 1u64.into())]);
        j.record(9, "b", vec![("ok".into(), true.into())]);
        let es = j.events();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].name, "a");
        assert_eq!(es[0].seq, 0);
        assert_eq!(es[1].t_ns, 9);
        assert_eq!(es[1].fields[0], ("ok".to_string(), Field::Bool(true)));
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let j = Journal::new(2);
        for i in 0..5u64 {
            j.record(i, "e", vec![]);
        }
        let es = j.events();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].seq, 3);
        assert_eq!(j.dropped(), 3);
        j.reset();
        assert!(j.events().is_empty());
        j.record(0, "later", vec![]);
        assert_eq!(j.events()[0].seq, 5, "sequence survives reset");
    }
}

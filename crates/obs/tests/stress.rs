//! Concurrency stress: many scoped threads hammering shared metric
//! handles and the journal while a reader thread takes snapshots.
//! Counters must not lose increments, histograms must not lose
//! samples, and concurrent snapshots must never observe impossible
//! states (count inflated beyond what was recorded).

use adya_obs::{Field, Registry};

const THREADS: usize = 8;
const ITERS: u64 = 10_000;

#[test]
fn counters_and_histograms_survive_contention() {
    let reg = Registry::new();
    let hits = reg.counter("stress.hits");
    let depth = reg.gauge("stress.depth");
    let lat = reg.histogram("stress.lat_ns");

    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let hits = reg.counter("stress.hits");
            let depth = &depth;
            let lat = &lat;
            s.spawn(move |_| {
                for i in 0..ITERS {
                    hits.inc();
                    depth.add(1);
                    depth.add(-1);
                    lat.record(t as u64 * ITERS + i);
                }
            });
        }
        // A concurrent reader: snapshots must stay internally sane.
        s.spawn(|_| {
            for _ in 0..100 {
                let snap = reg.snapshot();
                assert!(snap.counter("stress.hits") <= THREADS as u64 * ITERS);
                if let Some(h) = snap.histogram("stress.lat_ns") {
                    assert!(h.count <= THREADS as u64 * ITERS);
                    assert!(h.min <= h.max);
                }
                std::thread::yield_now();
            }
        });
    })
    .expect("no panics in stress threads");

    let snap = reg.snapshot();
    assert_eq!(snap.counter("stress.hits"), THREADS as u64 * ITERS);
    assert_eq!(hits.get(), THREADS as u64 * ITERS);
    assert_eq!(snap.gauge("stress.depth"), 0);
    let h = snap.histogram("stress.lat_ns").expect("recorded");
    assert_eq!(h.count, THREADS as u64 * ITERS);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, THREADS as u64 * ITERS - 1);
    // Sum of 0..N-1 = N(N-1)/2.
    let n = THREADS as u64 * ITERS;
    assert_eq!(h.sum, n * (n - 1) / 2);
}

#[test]
fn journal_under_contention_keeps_sequence_contiguous() {
    let reg = Registry::with_journal_capacity(64);
    crossbeam::thread::scope(|s| {
        for t in 0..4usize {
            let reg = &reg;
            s.spawn(move |_| {
                for i in 0..500u64 {
                    reg.event(
                        "stress.ev",
                        vec![("t".into(), Field::U64(t as u64)), ("i".into(), i.into())],
                    );
                }
            });
        }
    })
    .expect("no panics");
    let snap = reg.snapshot();
    assert_eq!(snap.events.len(), 64);
    assert_eq!(snap.events_dropped, 4 * 500 - 64);
    // Retained events are the newest, in strictly increasing seq order.
    let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");
    assert_eq!(*seqs.last().unwrap(), 4 * 500 - 1);
}

#[test]
fn reset_during_recording_never_corrupts() {
    // Reset racing with writers: totals afterwards are unpredictable,
    // but nothing must panic and a final quiesced reset must zero out.
    let reg = Registry::new();
    crossbeam::thread::scope(|s| {
        for _ in 0..4 {
            let reg = &reg;
            s.spawn(move |_| {
                for v in 0..2_000u64 {
                    reg.counter("reset.c").inc();
                    reg.histogram("reset.h").record(v);
                }
            });
        }
        let reg = &reg;
        s.spawn(move |_| {
            for _ in 0..50 {
                reg.reset();
                std::thread::yield_now();
            }
        });
    })
    .expect("no panics");
    reg.reset();
    let snap = reg.snapshot();
    assert_eq!(snap.counter("reset.c"), 0);
    assert_eq!(snap.histogram("reset.h").unwrap().count, 0);
}

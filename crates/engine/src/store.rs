//! The shared multi-version row store.
//!
//! Every engine stores data the same way — per-row version chains in
//! physical install order — and differs only in *which* version an
//! operation selects and in when transactions are forced to block or
//! abort. Chains correspond 1:1 to history objects; a
//! deleted-then-reinserted key starts a fresh chain (the model's
//! "distinct incarnations" rule).

use std::collections::HashMap;

use adya_history::{ObjectId, TxnId, Value, VersionId};

use crate::types::{Key, TableId};

/// One version in a chain.
#[derive(Debug, Clone)]
pub(crate) struct StoredVersion {
    /// Writing transaction.
    pub writer: TxnId,
    /// Per-(writer, object) modification counter.
    pub seq: u32,
    /// `None` encodes a dead (deleted) version.
    pub value: Option<Value>,
    /// Set when the writer commits.
    pub committed: bool,
    /// Commit stamp (monotone), set when the writer commits; used by
    /// snapshot reads.
    pub commit_stamp: Option<u64>,
}

impl StoredVersion {
    /// The history version id.
    pub fn version_id(&self) -> VersionId {
        VersionId::new(self.writer, self.seq)
    }

    /// True for dead (deletion) versions.
    pub fn is_dead(&self) -> bool {
        self.value.is_none()
    }
}

/// One object incarnation: a chain of versions in install order.
#[derive(Debug, Clone)]
pub(crate) struct RowChain {
    /// The table the row lives in.
    pub table: TableId,
    /// The row key (shared across incarnations).
    pub key: Key,
    /// The history object this incarnation maps to.
    pub object: ObjectId,
    /// Versions in physical install order.
    pub versions: Vec<StoredVersion>,
}

impl RowChain {
    /// The newest version regardless of commit status (dirty tip).
    pub fn tip(&self) -> Option<&StoredVersion> {
        self.versions.last()
    }

    /// The newest committed version.
    pub fn committed_tip(&self) -> Option<&StoredVersion> {
        self.versions.iter().rev().find(|v| v.committed)
    }

    /// The newest version written by `txn` (read-your-own-writes).
    pub fn own_latest(&self, txn: TxnId) -> Option<&StoredVersion> {
        self.versions.iter().rev().find(|v| v.writer == txn)
    }

    /// The newest version committed at or before `stamp` (snapshot
    /// visibility).
    pub fn version_at(&self, stamp: u64) -> Option<&StoredVersion> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.commit_stamp.is_some_and(|s| s <= stamp))
    }

    /// Appends a version.
    pub fn push(&mut self, writer: TxnId, seq: u32, value: Option<Value>) {
        self.versions.push(StoredVersion {
            writer,
            seq,
            value,
            committed: false,
            commit_stamp: None,
        });
    }

    /// Marks `txn`'s versions committed at `stamp`.
    pub fn commit_writer(&mut self, txn: TxnId, stamp: u64) {
        for v in &mut self.versions {
            if v.writer == txn {
                v.committed = true;
                v.commit_stamp = Some(stamp);
            }
        }
    }

    /// Removes `txn`'s versions (abort undo). Returns true if any were
    /// removed.
    pub fn remove_writer(&mut self, txn: TxnId) -> bool {
        let before = self.versions.len();
        self.versions.retain(|v| v.writer != txn);
        self.versions.len() != before
    }

    /// The committed version order entries for the history: final
    /// committed versions in physical order.
    pub fn committed_order(&self) -> Vec<VersionId> {
        // A writer's final seq on this object.
        let mut final_seq: HashMap<TxnId, u32> = HashMap::new();
        for v in &self.versions {
            if v.committed {
                let e = final_seq.entry(v.writer).or_insert(v.seq);
                if v.seq > *e {
                    *e = v.seq;
                }
            }
        }
        self.versions
            .iter()
            .filter(|v| v.committed && final_seq.get(&v.writer) == Some(&v.seq))
            .map(StoredVersion::version_id)
            .collect()
    }
}

/// The store: chains by (table, key), with incarnation tracking.
#[derive(Debug, Default)]
pub(crate) struct Store {
    /// Current incarnation per key.
    current: HashMap<(TableId, Key), usize>,
    /// All chains ever created, including superseded incarnations.
    pub chains: Vec<RowChain>,
    /// Chain indices per table, in creation order.
    by_table: HashMap<TableId, Vec<usize>>,
}

impl Store {
    pub fn new() -> Store {
        Store::default()
    }

    /// Index of the current incarnation.
    pub fn chain_index(&self, table: TableId, key: Key) -> Option<usize> {
        self.current.get(&(table, key)).copied()
    }

    /// Creates a fresh incarnation for `(table, key)` mapped to
    /// history object `object`, and makes it current.
    pub fn new_incarnation(&mut self, table: TableId, key: Key, object: ObjectId) -> usize {
        let ix = self.chains.len();
        self.chains.push(RowChain {
            table,
            key,
            object,
            versions: Vec::new(),
        });
        self.current.insert((table, key), ix);
        self.by_table.entry(table).or_default().push(ix);
        ix
    }

    /// Retires the current incarnation mapping of `(table, key)` if it
    /// still points at `chain_ix` (used when an aborted insert leaves
    /// an empty chain: the next writer must get a fresh object).
    pub fn retire_if_current(&mut self, table: TableId, key: Key, chain_ix: usize) {
        if self.current.get(&(table, key)) == Some(&chain_ix) {
            self.current.remove(&(table, key));
        }
    }

    /// All chain indices of `table` (every incarnation).
    pub fn table_chains(&self, table: TableId) -> &[usize] {
        self.by_table.get(&table).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::ObjectId;

    fn chain() -> RowChain {
        RowChain {
            table: TableId(0),
            key: Key(1),
            object: ObjectId(0),
            versions: Vec::new(),
        }
    }

    #[test]
    fn visibility_selectors() {
        let mut c = chain();
        c.push(TxnId(1), 1, Some(Value::Int(10)));
        c.commit_writer(TxnId(1), 1);
        c.push(TxnId(2), 1, Some(Value::Int(20)));
        // Dirty tip is T2's uncommitted version; committed tip is T1's.
        assert_eq!(c.tip().unwrap().writer, TxnId(2));
        assert_eq!(c.committed_tip().unwrap().writer, TxnId(1));
        assert_eq!(c.own_latest(TxnId(2)).unwrap().seq, 1);
        assert!(c.own_latest(TxnId(3)).is_none());
        // Snapshot visibility.
        assert_eq!(c.version_at(1).unwrap().writer, TxnId(1));
        assert!(c.version_at(0).is_none());
        c.commit_writer(TxnId(2), 5);
        assert_eq!(c.version_at(4).unwrap().writer, TxnId(1));
        assert_eq!(c.version_at(5).unwrap().writer, TxnId(2));
    }

    #[test]
    fn abort_removes_versions() {
        let mut c = chain();
        c.push(TxnId(1), 1, Some(Value::Int(10)));
        c.push(TxnId(2), 1, Some(Value::Int(20)));
        assert!(c.remove_writer(TxnId(2)));
        assert_eq!(c.versions.len(), 1);
        assert!(!c.remove_writer(TxnId(2)));
    }

    #[test]
    fn committed_order_keeps_final_versions_in_install_order() {
        let mut c = chain();
        c.push(TxnId(1), 1, Some(Value::Int(1)));
        c.push(TxnId(1), 2, Some(Value::Int(2))); // T1 writes twice
        c.push(TxnId(2), 1, Some(Value::Int(3)));
        c.commit_writer(TxnId(1), 1);
        c.commit_writer(TxnId(2), 2);
        let order = c.committed_order();
        assert_eq!(
            order,
            vec![VersionId::new(TxnId(1), 2), VersionId::new(TxnId(2), 1)]
        );
    }

    #[test]
    fn committed_order_skips_uncommitted() {
        let mut c = chain();
        c.push(TxnId(1), 1, Some(Value::Int(1)));
        c.push(TxnId(2), 1, Some(Value::Int(2)));
        c.commit_writer(TxnId(2), 1);
        assert_eq!(c.committed_order(), vec![VersionId::new(TxnId(2), 1)]);
    }

    #[test]
    fn incarnations_are_distinct_chains() {
        let mut s = Store::new();
        let a = s.new_incarnation(TableId(0), Key(1), ObjectId(0));
        let b = s.new_incarnation(TableId(0), Key(1), ObjectId(1));
        assert_ne!(a, b);
        let cur = s.chain_index(TableId(0), Key(1)).unwrap();
        assert_eq!(s.chains[cur].object, ObjectId(1));
        assert_eq!(s.table_chains(TableId(0)), &[a, b]);
    }
}

//! Records engine operations into a validated history.
//!
//! The recorder is the only bridge between the engines and the
//! checker: every read, write, predicate read, begin, commit and abort
//! flows through it, and [`Recorder::finalize`] assembles an
//! [`adya_history::History`] with explicit version orders (physical
//! install order) and predicate match tables re-derived from the
//! engines' own predicate closures.

use std::collections::HashMap;
use std::sync::Arc;

use adya_history::{
    Event, History, HistoryBuilder, ObjectId, PredicateId, PredicateReadEvent, ReadEvent,
    RelationId, TxnId, Value, VersionId, VersionKind, WriteEvent,
};
use parking_lot::Mutex;

use crate::ring::{EventRing, RingCloser, RingConsumer};
use crate::types::{Key, TableId, TablePred};

/// Observer invoked synchronously (under the recorder lock, so taps
/// see events in the exact recorded order) for every event as it is
/// recorded — the hook that feeds [`adya-online`]'s streaming checker
/// while an engine runs.
///
/// [`adya-online`]: https://docs.rs/adya-online
pub type EventTap = Arc<dyn Fn(&Event) + Send + Sync>;

/// Observer like [`EventTap`] that also receives the event's recorder
/// sequence number — its 0-based position in recorded order. The
/// sequence number is the stable *event id* forensic exports key their
/// timelines on: it survives the trip through tap → event log →
/// replay, unlike wall-clock times.
pub type SeqEventTap = Arc<dyn Fn(u64, &Event) + Send + Sync>;

/// Builds the pipeline's buffering tap: `rings` bounded SPSC event
/// rings of `capacity` events each, plus a [`SeqEventTap`] that fans
/// every recorded event into ring `seq % rings` with blocking
/// backpressure. Install the tap with
/// [`Engine::set_seq_event_tap`](crate::Engine::set_seq_event_tap) and
/// hand the consumers to the pipeline sequencer.
///
/// Sequence numbers are rebased so the first event the tap observes is
/// pipeline sequence 0 — a recorder may already hold events (workload
/// setup transactions, say) when the pipeline attaches, and the
/// sequencer always starts expecting 0. Taps run under the recorder
/// lock, so the first observed event provably has the smallest
/// recorder sequence.
///
/// Sharding by sequence number (rather than by producing thread) keeps
/// the ring assignment a pure function of the recorded stream — so
/// equivalence tests and crash replays are reproducible — and lets the
/// sequencer merge rings in O(1): event `seq` can only ever be at the
/// head of ring `seq % rings`. Each ring still honors the SPSC
/// contract: taps run under the recorder mutex (one pusher at a time,
/// with the mutex providing the cross-thread happens-before), and the
/// sequencer is the only popper.
///
/// The returned [`RingCloser`]s end the stream once the producing side
/// is done (the tap closure owns the producer endpoints, so a driver
/// could not reach them otherwise); dropping the tap closes the rings
/// too.
pub fn buffering_tap(
    rings: usize,
    capacity: usize,
) -> (SeqEventTap, Vec<RingConsumer>, Vec<RingCloser>) {
    let rings = rings.max(1);
    let mut producers = Vec::with_capacity(rings);
    let mut consumers = Vec::with_capacity(rings);
    for _ in 0..rings {
        let (p, c) = EventRing::with_capacity(capacity);
        producers.push(p);
        consumers.push(c);
    }
    let closers = producers.iter().map(|p| p.closer()).collect();
    let k = producers.len() as u64;
    // u64::MAX marks "no event seen yet"; a real recorder sequence can
    // never reach it. Relaxed suffices: the recorder lock already
    // orders tap invocations.
    let base = std::sync::atomic::AtomicU64::new(u64::MAX);
    let tap: SeqEventTap = Arc::new(move |seq, ev| {
        let b = match base.load(std::sync::atomic::Ordering::Relaxed) {
            u64::MAX => {
                base.store(seq, std::sync::atomic::Ordering::Relaxed);
                seq
            }
            b => b,
        };
        let rel = seq - b;
        producers[(rel % k) as usize].push(rel, ev.clone());
    });
    (tap, consumers, closers)
}

#[derive(Default)]
struct Rec {
    b: HistoryBuilder,
    next_txn: u32,
    /// Events recorded so far; the next event's id.
    seq: u64,
    rel_of_table: HashMap<TableId, RelationId>,
    /// Predicates are identified by the address of their shared test
    /// closure, so cloned `TablePred`s map to one history predicate.
    pred_of: HashMap<usize, PredicateId>,
    /// Explicit version orders to apply at finalize.
    orders: Vec<(ObjectId, Vec<VersionId>)>,
    /// Set by [`Recorder::finalize`]; a second finalize would build
    /// from a drained builder and silently return an empty history.
    finalized: bool,
    /// Streaming observer; see [`EventTap`].
    tap: Option<EventTap>,
    /// Id-carrying streaming observer; see [`SeqEventTap`].
    seq_tap: Option<SeqEventTap>,
}

impl Rec {
    /// Delivers `ev` to the installed tap, if any.
    ///
    /// Panic-safe: a tap callback that panics is caught here (the
    /// recorder lock is held by the caller, so letting the panic
    /// unwind would leave every later engine operation racing a
    /// half-observed stream — or, with a poisoning mutex, wedge the
    /// engine entirely). The offending tap is disarmed so the engine
    /// keeps running untapped, and the incident is counted and
    /// journaled through `adya-obs`.
    fn emit(&mut self, ev: Event) {
        let id = self.seq;
        self.seq += 1;
        if let Some(tap) = &self.tap {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tap(&ev)));
            if caught.is_err() {
                self.tap = None;
                Rec::tap_panicked();
            }
        }
        if let Some(tap) = &self.seq_tap {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tap(id, &ev)));
            if caught.is_err() {
                self.seq_tap = None;
                Rec::tap_panicked();
            }
        }
    }

    fn tap_panicked() {
        adya_obs::counter!("engine.tap_panics").inc();
        adya_obs::global().event(
            "engine.tap_panic",
            vec![(
                "disarmed".into(),
                adya_obs::Field::from("tap removed; engine continues untapped"),
            )],
        );
    }
}

/// Thread-safe history recorder shared by an engine's operations.
#[derive(Default)]
pub struct Recorder {
    inner: Mutex<Rec>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Allocates a transaction id and records its begin event.
    pub fn begin_txn(&self) -> TxnId {
        let mut r = self.inner.lock();
        let t = TxnId(r.next_txn);
        r.next_txn += 1;
        r.b.begin(t);
        r.emit(Event::Begin(t));
        t
    }

    /// Installs a streaming observer that sees every subsequent event
    /// (begins, reads, writes, commits, aborts, predicate reads) in
    /// recorded order. Events already recorded are not replayed.
    pub fn set_tap(&self, tap: EventTap) {
        self.inner.lock().tap = Some(tap);
    }

    /// Installs an observer that also receives each event's recorder
    /// sequence number (see [`SeqEventTap`]). Independent of
    /// [`set_tap`]; both may be installed at once. Ids keep counting
    /// from the events already recorded.
    ///
    /// [`set_tap`]: Recorder::set_tap
    pub fn set_seq_tap(&self, tap: SeqEventTap) {
        self.inner.lock().seq_tap = Some(tap);
    }

    /// Number of events recorded so far — equivalently, the id the
    /// next recorded event will get.
    pub fn event_count(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Registers `table` as a history relation (idempotent).
    pub fn register_table(&self, table: TableId, name: &str) -> RelationId {
        let mut r = self.inner.lock();
        if let Some(&rel) = r.rel_of_table.get(&table) {
            return rel;
        }
        let rel = r.b.relation(name);
        r.rel_of_table.insert(table, rel);
        rel
    }

    /// Registers a fresh object (row incarnation) in `table`.
    pub fn register_object(&self, table: TableId, key: Key, incarnation: u32) -> ObjectId {
        let mut r = self.inner.lock();
        let rel = *r
            .rel_of_table
            .get(&table)
            .expect("table must be registered before its rows");
        let name = if incarnation == 0 {
            format!("{}{}", table, key)
        } else {
            format!("{}{}@{}", table, key, incarnation)
        };
        r.b.object_in(name, rel)
    }

    /// Records the requested isolation level of `txn` (for the
    /// mixed-history analysis of §5.5).
    pub fn set_level(&self, txn: TxnId, level: adya_history::RequestedLevel) {
        self.inner.lock().b.txn_level(txn, level);
    }

    /// Records a visible write; returns the created version id.
    pub fn write(&self, txn: TxnId, object: ObjectId, value: Value) -> VersionId {
        let mut r = self.inner.lock();
        let v = r.b.write(txn, object, value.clone());
        r.emit(Event::Write(WriteEvent {
            txn,
            object,
            seq: v.seq,
            kind: VersionKind::Visible,
            value: Some(value),
        }));
        v
    }

    /// Records a delete (dead version); returns the created version id.
    pub fn delete(&self, txn: TxnId, object: ObjectId) -> VersionId {
        let mut r = self.inner.lock();
        let v = r.b.delete(txn, object);
        r.emit(Event::Write(WriteEvent {
            txn,
            object,
            seq: v.seq,
            kind: VersionKind::Dead,
            value: None,
        }));
        v
    }

    /// Records an item read of an explicit version.
    pub fn read(&self, txn: TxnId, object: ObjectId, version: VersionId) {
        let mut r = self.inner.lock();
        r.b.read_version(txn, object, version);
        r.emit(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: false,
        }));
    }

    /// Records a cursor read of an explicit version (Cursor
    /// Stability).
    pub fn cursor_read(&self, txn: TxnId, object: ObjectId, version: VersionId) {
        let mut r = self.inner.lock();
        r.b.cursor_read_version(txn, object, version);
        r.emit(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: true,
        }));
    }

    /// Records a predicate read with its version set, registering the
    /// predicate (and scheduling its match-table derivation) on first
    /// use.
    pub fn predicate_read(&self, txn: TxnId, pred: &TablePred, vset: Vec<(ObjectId, VersionId)>) {
        let mut r = self.inner.lock();
        let key = Arc::as_ptr(&pred.test) as *const () as usize;
        let pid = match r.pred_of.get(&key) {
            Some(&p) => p,
            None => {
                let rel = *r
                    .rel_of_table
                    .get(&pred.table)
                    .expect("predicate over unregistered table");
                let pid = r.b.predicate(pred.name.clone(), &[rel]);
                let test = Arc::clone(&pred.test);
                r.b.derive_matches(pid, move |v| test(v));
                r.pred_of.insert(key, pid);
                pid
            }
        };
        r.b.predicate_read_versions(txn, pid, vset.clone());
        r.emit(Event::PredicateRead(PredicateReadEvent {
            txn,
            predicate: pid,
            vset,
        }));
    }

    /// Records a commit.
    pub fn commit(&self, txn: TxnId) {
        adya_obs::counter!("engine.commit").inc();
        let mut r = self.inner.lock();
        r.b.commit(txn);
        r.emit(Event::Commit(txn));
    }

    /// Records an abort.
    pub fn abort(&self, txn: TxnId) {
        adya_obs::counter!("engine.abort").inc();
        let mut r = self.inner.lock();
        r.b.abort(txn);
        r.emit(Event::Abort(txn));
    }

    /// Supplies the physical version order of one object (committed
    /// final versions, install order), to be applied at finalize.
    pub fn set_version_order(&self, object: ObjectId, order: Vec<VersionId>) {
        self.inner.lock().orders.push((object, order));
    }

    /// Builds the validated history. Still-running transactions are
    /// completed with aborts (the paper's completion rule), which is
    /// what a crash at this instant would have meant.
    ///
    /// Panics if the recorded event stream violates the model's
    /// well-formedness rules — that would be an engine bug, and the
    /// whole point of the recorder is to make such bugs loud. Also
    /// panics on a second call: finalize drains the builder, so a
    /// repeat would silently yield an empty history.
    pub fn finalize(&self) -> History {
        let mut r = self.inner.lock();
        assert!(
            !r.finalized,
            "Recorder::finalize called twice; it drains the builder, \
             so a second history would be silently empty"
        );
        r.finalized = true;
        let orders = std::mem::take(&mut r.orders);
        // Rebuild the builder by value to call the consuming build.
        let mut b = std::mem::take(&mut r.b);
        for (obj, order) in orders {
            b.version_order(obj, &order);
        }
        b.build_completed()
            .expect("engine recorded an ill-formed history (engine bug)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_round_trip() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "acct");
        let obj = rec.register_object(table, Key(1), 0);
        let t1 = rec.begin_txn();
        let v1 = rec.write(t1, obj, Value::Int(5));
        rec.commit(t1);
        let t2 = rec.begin_txn();
        rec.read(t2, obj, v1);
        rec.commit(t2);
        rec.set_version_order(obj, vec![v1]);
        let h = rec.finalize();
        assert_eq!(h.committed_txns().count(), 2);
        assert_eq!(h.version_order(obj).len(), 2);
    }

    #[test]
    fn incomplete_txns_get_aborted() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "acct");
        let obj = rec.register_object(table, Key(1), 0);
        let t1 = rec.begin_txn();
        rec.write(t1, obj, Value::Int(5));
        let h = rec.finalize();
        assert!(!h.is_committed(t1));
    }

    #[test]
    fn predicate_registration_dedups_by_closure() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "emp");
        let obj = rec.register_object(table, Key(1), 0);
        let p = TablePred::new("pos", table, |v| matches!(v, Value::Int(i) if *i > 0));
        let t1 = rec.begin_txn();
        let v = rec.write(t1, obj, Value::Int(3));
        rec.commit(t1);
        let t2 = rec.begin_txn();
        rec.predicate_read(t2, &p.clone(), vec![(obj, v)]);
        rec.predicate_read(t2, &p, vec![(obj, v)]);
        rec.commit(t2);
        let h = rec.finalize();
        assert_eq!(h.predicates().count(), 1);
        let (pid, _) = h.predicates().next().unwrap();
        assert!(h.matches(pid, obj, v), "match table derived from closure");
    }

    #[test]
    #[should_panic(expected = "finalize called twice")]
    fn double_finalize_panics_instead_of_returning_empty() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "acct");
        let obj = rec.register_object(table, Key(1), 0);
        let t1 = rec.begin_txn();
        rec.write(t1, obj, Value::Int(5));
        rec.commit(t1);
        let h = rec.finalize();
        assert_eq!(h.committed_txns().count(), 1);
        let _ = rec.finalize(); // must panic, not hand back an empty history
    }

    #[test]
    fn panicking_tap_is_disarmed_not_fatal() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "acct");
        let obj = rec.register_object(table, Key(1), 0);
        let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let n = Arc::clone(&seen);
        // A tap that panics on its second event: the panic must be
        // contained, the tap disarmed, and the recorder fully usable.
        rec.set_tap(Arc::new(move |_e| {
            if n.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 1 {
                panic!("tap exploded");
            }
        }));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let t1 = rec.begin_txn(); // event 1: delivered
        let v1 = rec.write(t1, obj, Value::Int(5)); // event 2: tap panics, gets disarmed
        std::panic::set_hook(hook);
        rec.commit(t1); // tap is gone; must not panic again
        let t2 = rec.begin_txn();
        rec.read(t2, obj, v1);
        rec.commit(t2);
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 2);
        let h = rec.finalize();
        assert_eq!(h.committed_txns().count(), 2);
    }

    #[test]
    fn seq_tap_sees_stable_event_ids() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "acct");
        let obj = rec.register_object(table, Key(1), 0);
        let ids = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&ids);
        rec.set_seq_tap(Arc::new(move |id, ev| {
            sink.lock().push((id, ev.clone()));
        }));
        let t1 = rec.begin_txn();
        let v1 = rec.write(t1, obj, Value::Int(5));
        rec.commit(t1);
        let t2 = rec.begin_txn();
        rec.read(t2, obj, v1);
        rec.commit(t2);
        assert_eq!(rec.event_count(), 6);
        let got = ids.lock();
        assert_eq!(got.len(), 6);
        // Ids are the 0-based recorded order, matching the finalized
        // history's event indices.
        for (i, (id, _)) in got.iter().enumerate() {
            assert_eq!(*id, i as u64);
        }
        assert_eq!(got[0].1, Event::Begin(t1));
        assert_eq!(got[5].1, Event::Commit(t2));
    }

    #[test]
    fn incarnation_names_are_distinct() {
        let rec = Recorder::new();
        let table = TableId(0);
        rec.register_table(table, "t");
        let a = rec.register_object(table, Key(7), 0);
        let b = rec.register_object(table, Key(7), 1);
        assert_ne!(a, b);
    }
}

//! Shared engine types: tables, keys, predicates, operation results.

use std::fmt;
use std::sync::Arc;

use adya_history::{TxnId, Value};
use parking_lot::Mutex;

/// Identifier of a table (maps 1:1 to a history relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table{}", self.0)
    }
}

/// A row key within a table. Rows are objects of the history model;
/// a deleted-then-reinserted key becomes a fresh object (the model
/// treats incarnations as distinct).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The table catalog, shared by all engines.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Mutex<Vec<String>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or looks up) a table by name.
    pub fn table(&self, name: &str) -> TableId {
        let mut tables = self.tables.lock();
        if let Some(ix) = tables.iter().position(|t| t == name) {
            return TableId(ix as u32);
        }
        tables.push(name.to_string());
        TableId((tables.len() - 1) as u32)
    }

    /// Name of `table`.
    pub fn table_name(&self, table: TableId) -> String {
        self.tables.lock()[table.0 as usize].clone()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// True when no table has been registered.
    pub fn is_empty(&self) -> bool {
        self.tables.lock().is_empty()
    }
}

/// A predicate over one table: the engine-side counterpart of the
/// history model's predicates (boolean condition + relation).
///
/// The closure receives a row's value and decides membership; the
/// recorder re-evaluates the same closure over every recorded version
/// to build the history's match table, so engine and checker are
/// guaranteed to agree on what "matches" means.
#[derive(Clone)]
pub struct TablePred {
    /// Human-readable condition, e.g. `"dept = Sales"`.
    pub name: String,
    /// The table the condition ranges over.
    pub table: TableId,
    /// The condition itself.
    pub test: Arc<dyn Fn(&Value) -> bool + Send + Sync>,
}

impl TablePred {
    /// Creates a predicate.
    pub fn new(
        name: impl Into<String>,
        table: TableId,
        test: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> TablePred {
        TablePred {
            name: name.into(),
            table,
            test: Arc::new(test),
        }
    }

    /// Evaluates the condition on a row value.
    pub fn matches(&self, value: &Value) -> bool {
        (self.test)(value)
    }
}

impl fmt::Debug for TablePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TablePred")
            .field("name", &self.name)
            .field("table", &self.table)
            .finish_non_exhaustive()
    }
}

/// Why an engine aborted a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// The application asked for the abort.
    Requested,
    /// Optimistic validation failed (read set overlapped a
    /// concurrent committer's write set).
    ValidationFailed,
    /// First-committer-wins write conflict (Snapshot Isolation).
    WriteConflict,
    /// Committing would have closed a proscribed cycle in the
    /// serialization graph (SGT certifier), or an operation would
    /// have.
    CycleDetected,
    /// A transaction this one read from aborted (cascaded abort).
    CascadedAbort,
    /// The driver chose this transaction as a deadlock victim.
    DeadlockVictim,
    /// A fault-injection layer (`adya-faults`) forced the abort; the
    /// underlying engine had no reason of its own.
    Injected,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Requested => write!(f, "requested"),
            AbortReason::ValidationFailed => write!(f, "validation failed"),
            AbortReason::WriteConflict => write!(f, "write-write conflict"),
            AbortReason::CycleDetected => write!(f, "serialization cycle"),
            AbortReason::CascadedAbort => write!(f, "cascaded abort"),
            AbortReason::DeadlockVictim => write!(f, "deadlock victim"),
            AbortReason::Injected => write!(f, "injected fault"),
        }
    }
}

/// The outcome of one engine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The operation cannot proceed right now: the listed transactions
    /// hold conflicting locks (or must commit first). Retrying the
    /// identical call later is safe — blocked operations have no side
    /// effects.
    Blocked {
        /// Current conflict holders, for the driver's wait-for graph.
        holders: Vec<TxnId>,
    },
    /// The transaction has been aborted (by this call or earlier).
    Aborted(AbortReason),
    /// The handle does not name a live transaction.
    UnknownTxn,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Blocked { holders } => {
                write!(f, "blocked on")?;
                for h in holders {
                    write!(f, " {h}")?;
                }
                Ok(())
            }
            EngineError::Aborted(r) => write!(f, "aborted: {r}"),
            EngineError::UnknownTxn => write!(f, "unknown transaction"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of an engine operation.
pub type OpResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_dedups_by_name() {
        let c = Catalog::new();
        let a = c.table("acct");
        let b = c.table("acct");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        assert_eq!(c.table_name(a), "acct");
        let d = c.table("emp");
        assert_ne!(a, d);
    }

    #[test]
    fn predicate_evaluates() {
        let c = Catalog::new();
        let t = c.table("emp");
        let p = TablePred::new("positive", t, |v| matches!(v, Value::Int(i) if *i > 0));
        assert!(p.matches(&Value::Int(3)));
        assert!(!p.matches(&Value::Int(-1)));
    }

    #[test]
    fn errors_display() {
        let e = EngineError::Blocked {
            holders: vec![TxnId(3)],
        };
        assert!(e.to_string().contains("T3"));
        assert!(EngineError::Aborted(AbortReason::WriteConflict)
            .to_string()
            .contains("conflict"));
    }
}

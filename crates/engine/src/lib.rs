//! Transactional storage substrate with pluggable concurrency control,
//! recording complete Adya histories.
//!
//! The paper argues that its generalized isolation definitions admit
//! locking, optimistic *and* multi-version implementations alike. This
//! crate makes that argument executable by providing one storage model
//! and four concurrency-control schemes behind a common [`Engine`]
//! trait:
//!
//! * [`LockingEngine`] — two-phase locking with the exact lock-scope
//!   configurations of Figure 1 (short/long, read/write,
//!   item/predicate), one constructor per row: Degree 0, READ
//!   UNCOMMITTED, READ COMMITTED, REPEATABLE READ, SERIALIZABLE.
//! * [`OccEngine`] — Kung–Robinson style optimistic concurrency
//!   control: reads against the committed state, buffered writes,
//!   backward validation at commit (with predicate-aware validation to
//!   catch phantoms).
//! * [`SgtEngine`] — a serialization-graph-testing certifier that
//!   tracks the paper's own conflict edges online and aborts
//!   transactions whose operations would close a proscribed cycle. It
//!   permits dirty reads during execution (the mobile/disconnected
//!   scenario of §3) while still committing only PL-3 histories — the
//!   star witness that P1/P2 over-reject.
//! * [`MvccEngine`] — multi-version concurrency control in two
//!   flavours: Snapshot Isolation (snapshot reads,
//!   first-committer-wins) and multi-version read committed.
//! * [`MvtoEngine`] — multiversion timestamp ordering: versions are
//!   ordered by begin timestamps rather than commit order, producing
//!   the `H_write_order`-style histories that motivate the model's
//!   explicit version orders (§4.2).
//!
//! Every operation is recorded through a [`Recorder`] that assembles a
//! validated [`adya_history::History`]; the engines never talk to the
//! checker, so running a workload and checking the resulting history
//! is a genuine end-to-end experiment.
//!
//! ```
//! use adya_engine::{Engine, LockingEngine, LockConfig, Key, Value};
//!
//! let eng = LockingEngine::new(LockConfig::serializable());
//! let t = eng.catalog().table("acct");
//! let t1 = eng.begin();
//! eng.write(t1, t, Key(1), Value::Int(100)).unwrap();
//! eng.commit(t1).unwrap();
//! let t2 = eng.begin();
//! assert_eq!(eng.read(t2, t, Key(1)).unwrap(), Some(Value::Int(100)));
//! eng.commit(t2).unwrap();
//! let history = eng.finalize();
//! assert_eq!(history.committed_txns().count(), 2);
//! ```

#![warn(missing_docs)]

mod engine;
mod lock;
mod locking;
mod mvcc;
mod mvto;
mod occ;
mod recorder;
mod ring;
mod sgt;
mod store;
mod types;

pub use engine::Engine;
pub use lock::{LockMode, LockRequest};
pub use locking::{LockConfig, LockDuration, LockingEngine};
pub use mvcc::{MvccEngine, MvccMode};
pub use mvto::MvtoEngine;
pub use occ::OccEngine;
pub use recorder::{buffering_tap, EventTap, Recorder, SeqEventTap};
pub use ring::{EventRing, RingCloser, RingConsumer, RingProducer};
pub use sgt::{CertifyLevel, SgtEngine};
pub use types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

/// Re-exported types shared with the history model.
pub use adya_history::{Row, TxnId, Value};

//! The item/predicate lock table used by the locking engine.
//!
//! Locks are never waited on inside the engine: acquisition either
//! succeeds or reports the conflicting holders, and the caller decides
//! whether to retry (driver-level waiting) or abort (deadlock
//! victim). Predicate locks are *precision locks*: a writer conflicts
//! with a predicate lock only if the row's before- or after-image
//! actually satisfies the predicate — the flexible implementation the
//! paper explicitly admits (§4.4.2).

use std::collections::{BTreeSet, HashMap};

use adya_history::TxnId;

use crate::types::{Key, TableId, TablePred};

/// Lock modes for item locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// A lock request outcome is either granted or a set of conflicting
/// holders.
pub type LockRequest = Result<(), Vec<TxnId>>;

#[derive(Debug, Default)]
struct ItemLock {
    sharers: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// One held predicate read lock.
#[derive(Clone)]
pub(crate) struct PredLock {
    pub txn: TxnId,
    pub pred: TablePred,
}

/// The lock table.
#[derive(Default)]
pub(crate) struct LockTable {
    items: HashMap<(TableId, Key), ItemLock>,
    preds: Vec<PredLock>,
}

impl LockTable {
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Tries to acquire an item lock; re-entrant, with S→X upgrade
    /// when `txn` is the sole sharer. A shared request by the current
    /// exclusive holder is a no-op (X subsumes S), so a later
    /// short-duration shared release can never drop a long exclusive
    /// claim.
    pub fn try_item(
        &mut self,
        txn: TxnId,
        table: TableId,
        key: Key,
        mode: LockMode,
    ) -> LockRequest {
        let out = self.try_item_inner(txn, table, key, mode);
        match &out {
            Ok(()) => adya_obs::counter!("engine.lock.granted").inc(),
            Err(_) => adya_obs::counter!("engine.lock.conflict").inc(),
        }
        out
    }

    fn try_item_inner(
        &mut self,
        txn: TxnId,
        table: TableId,
        key: Key,
        mode: LockMode,
    ) -> LockRequest {
        let entry = self.items.entry((table, key)).or_default();
        match mode {
            LockMode::Shared => {
                if let Some(x) = entry.exclusive {
                    if x != txn {
                        return Err(vec![x]);
                    }
                    return Ok(()); // X subsumes S
                }
                entry.sharers.insert(txn);
                Ok(())
            }
            LockMode::Exclusive => {
                if let Some(x) = entry.exclusive {
                    if x != txn {
                        return Err(vec![x]);
                    }
                    return Ok(());
                }
                let others: Vec<TxnId> = entry
                    .sharers
                    .iter()
                    .copied()
                    .filter(|&s| s != txn)
                    .collect();
                if !others.is_empty() {
                    return Err(others);
                }
                // Upgrade: the share (if any) is replaced by the
                // exclusive claim.
                entry.sharers.remove(&txn);
                entry.exclusive = Some(txn);
                Ok(())
            }
        }
    }

    /// True if `txn` holds any claim (shared or exclusive) on the item.
    pub fn holds_any(&self, txn: TxnId, table: TableId, key: Key) -> bool {
        self.items
            .get(&(table, key))
            .is_some_and(|e| e.exclusive == Some(txn) || e.sharers.contains(&txn))
    }

    /// Releases `txn`'s *shared* claim on one item. Its exclusive
    /// claim, if any, is untouched.
    pub fn release_shared(&mut self, txn: TxnId, table: TableId, key: Key) {
        if let Some(entry) = self.items.get_mut(&(table, key)) {
            entry.sharers.remove(&txn);
            if entry.sharers.is_empty() && entry.exclusive.is_none() {
                self.items.remove(&(table, key));
            }
        }
    }

    /// Releases `txn`'s *exclusive* claim on one item (short write
    /// locks, Degree 0).
    pub fn release_exclusive(&mut self, txn: TxnId, table: TableId, key: Key) {
        if let Some(entry) = self.items.get_mut(&(table, key)) {
            if entry.exclusive == Some(txn) {
                entry.exclusive = None;
            }
            if entry.sharers.is_empty() && entry.exclusive.is_none() {
                self.items.remove(&(table, key));
            }
        }
    }

    /// Registers a predicate read lock.
    pub fn add_pred(&mut self, txn: TxnId, pred: TablePred) {
        self.preds.push(PredLock { txn, pred });
    }

    /// Predicate locks held by transactions other than `txn` on
    /// `table`.
    pub fn pred_locks_of_others(&self, txn: TxnId, table: TableId) -> Vec<&PredLock> {
        self.preds
            .iter()
            .filter(|p| p.txn != txn && p.pred.table == table)
            .collect()
    }

    /// Transactions (other than `txn`) holding an exclusive lock on
    /// `(table, key)`.
    pub fn exclusive_holder(&self, txn: TxnId, table: TableId, key: Key) -> Option<TxnId> {
        self.items
            .get(&(table, key))
            .and_then(|e| e.exclusive)
            .filter(|&x| x != txn)
    }

    /// Releases every lock held by `txn`.
    pub fn release_all(&mut self, txn: TxnId) {
        self.items.retain(|_, e| {
            e.sharers.remove(&txn);
            if e.exclusive == Some(txn) {
                e.exclusive = None;
            }
            !(e.sharers.is_empty() && e.exclusive.is_none())
        });
        self.preds.retain(|p| p.txn != txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::Value;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const TBL: TableId = TableId(0);
    const K: Key = Key(1);

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        assert!(lt.try_item(T1, TBL, K, LockMode::Shared).is_ok());
        assert!(lt.try_item(T2, TBL, K, LockMode::Shared).is_ok());
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Shared).unwrap();
        let holders = lt.try_item(T2, TBL, K, LockMode::Exclusive).unwrap_err();
        assert_eq!(holders, vec![T1]);
    }

    #[test]
    fn exclusive_conflicts_with_exclusive() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap();
        assert!(lt.try_item(T2, TBL, K, LockMode::Exclusive).is_err());
        assert!(lt.try_item(T2, TBL, K, LockMode::Shared).is_err());
    }

    #[test]
    fn reentrant_and_upgrade() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Shared).unwrap();
        // Sole sharer upgrades.
        assert!(lt.try_item(T1, TBL, K, LockMode::Exclusive).is_ok());
        assert!(lt.try_item(T1, TBL, K, LockMode::Exclusive).is_ok());
        // But not when someone else shares.
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Shared).unwrap();
        lt.try_item(T2, TBL, K, LockMode::Shared).unwrap();
        assert_eq!(
            lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap_err(),
            vec![T2]
        );
    }

    #[test]
    fn release_all_frees_everything() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap();
        lt.add_pred(T1, TablePred::new("p", TBL, |_| true));
        lt.release_all(T1);
        assert!(lt.try_item(T2, TBL, K, LockMode::Exclusive).is_ok());
        assert!(lt.pred_locks_of_others(T2, TBL).is_empty());
    }

    #[test]
    fn release_item_allows_regrant() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap();
        lt.release_exclusive(T1, TBL, K);
        assert!(lt.try_item(T2, TBL, K, LockMode::Exclusive).is_ok());
    }

    #[test]
    fn short_shared_release_preserves_long_exclusive() {
        // The bug class this API prevents: a short read lock taken and
        // released by the exclusive holder must not drop its X claim.
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap();
        lt.try_item(T1, TBL, K, LockMode::Shared).unwrap();
        lt.release_shared(T1, TBL, K);
        assert!(lt.try_item(T2, TBL, K, LockMode::Shared).is_err());
        assert!(lt.holds_any(T1, TBL, K));
        assert!(!lt.holds_any(T2, TBL, K));
    }

    #[test]
    fn pred_locks_filter_by_table_and_owner() {
        let mut lt = LockTable::new();
        let p = TablePred::new("pos", TBL, |v| matches!(v, Value::Int(i) if *i > 0));
        lt.add_pred(T1, p);
        assert_eq!(lt.pred_locks_of_others(T2, TBL).len(), 1);
        assert!(lt.pred_locks_of_others(T1, TBL).is_empty());
        assert!(lt.pred_locks_of_others(T2, TableId(9)).is_empty());
        lt.release_all(T1);
        assert!(lt.pred_locks_of_others(T2, TBL).is_empty());
    }

    #[test]
    fn exclusive_holder_lookup() {
        let mut lt = LockTable::new();
        lt.try_item(T1, TBL, K, LockMode::Exclusive).unwrap();
        assert_eq!(lt.exclusive_holder(T2, TBL, K), Some(T1));
        assert_eq!(lt.exclusive_holder(T1, TBL, K), None);
    }
}

//! Multiversion timestamp ordering (MVTO).
//!
//! The scheme that makes §4.2's version-order flexibility *necessary*:
//! versions are ordered by their writers' **begin timestamps**, not by
//! commit order, so a transaction that started earlier but commits
//! later installs its version *before* a faster competitor's — the
//! paper's `H_write_order` (`x2 << x1` despite `c1 < c2`) is this
//! engine's everyday output. A recorder that could only express commit
//! order could not describe these histories at all.
//!
//! Rules (Bernstein–Hadzilacos–Goodman, adapted to the recorder
//! model):
//!
//! * `begin` assigns a monotone timestamp `ts(T)`.
//! * `read(x)` selects the version with the largest writer timestamp
//!   `≤ ts(T)` (uncommitted versions included — readers take a commit
//!   dependency on the writer and cascade if it aborts); the version's
//!   read-timestamp is raised to `ts(T)`.
//! * `write(x)` by `T` is **too late** — abort — if the version it
//!   would supersede has already been read by a transaction younger
//!   than `T` (that reader's view would be invalidated).
//! * `commit` waits (`Blocked`) until every version the transaction
//!   read is committed.

use std::collections::{HashMap, HashSet};

use adya_history::{History, RequestedLevel, TxnId, Value, VersionId};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::recorder::Recorder;
use crate::types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

/// One version in timestamp order.
#[derive(Debug, Clone)]
struct TsVersion {
    writer: TxnId,
    /// Writer's begin timestamp (the ordering key).
    wts: u64,
    /// Largest reader timestamp so far.
    rts: u64,
    seq: u32,
    value: Option<Value>,
    committed: bool,
}

impl TsVersion {
    fn version_id(&self) -> VersionId {
        VersionId::new(self.writer, self.seq)
    }
}

/// One object incarnation: versions sorted by `wts` ascending.
#[derive(Debug, Clone)]
struct TsChain {
    object: adya_history::ObjectId,
    versions: Vec<TsVersion>,
}

impl TsChain {
    /// The version a transaction with timestamp `ts` reads: largest
    /// `wts <= ts`.
    fn visible_at(&self, ts: u64) -> Option<&TsVersion> {
        self.versions.iter().rev().find(|v| v.wts <= ts)
    }

    fn visible_at_mut(&mut self, ts: u64) -> Option<&mut TsVersion> {
        self.versions.iter_mut().rev().find(|v| v.wts <= ts)
    }

    /// Inserts keeping `wts` order.
    fn insert(&mut self, v: TsVersion) {
        let pos = self
            .versions
            .iter()
            .position(|x| x.wts > v.wts)
            .unwrap_or(self.versions.len());
        self.versions.insert(pos, v);
    }

    /// Committed final versions in timestamp order.
    fn committed_order(&self) -> Vec<VersionId> {
        let mut final_seq: HashMap<TxnId, u32> = HashMap::new();
        for v in &self.versions {
            if v.committed {
                let e = final_seq.entry(v.writer).or_insert(v.seq);
                if v.seq > *e {
                    *e = v.seq;
                }
            }
        }
        self.versions
            .iter()
            .filter(|v| v.committed && final_seq.get(&v.writer) == Some(&v.seq))
            .map(TsVersion::version_id)
            .collect()
    }
}

struct TxnState {
    status: TxnStatus,
    ts: u64,
    /// Uncommitted writers this transaction read from.
    read_from: HashSet<TxnId>,
    /// Readers of this transaction's uncommitted versions.
    readers_of_mine: HashSet<TxnId>,
    written: HashSet<(TableId, Key)>,
}

struct Inner {
    chains: HashMap<(TableId, Key), TsChain>,
    txns: HashMap<TxnId, TxnState>,
    next_ts: u64,
    known_tables: HashSet<TableId>,
    /// Largest timestamp that predicate-scanned each table; inserts by
    /// older transactions are "too late" (the phantom guard MVTO needs
    /// on top of per-version read timestamps).
    table_read_ts: HashMap<TableId, u64>,
}

/// The MVTO engine.
pub struct MvtoEngine {
    catalog: Catalog,
    recorder: Recorder,
    inner: Mutex<Inner>,
}

impl Default for MvtoEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MvtoEngine {
    /// Creates an empty MVTO engine.
    pub fn new() -> MvtoEngine {
        MvtoEngine {
            catalog: Catalog::new(),
            recorder: Recorder::new(),
            inner: Mutex::new(Inner {
                chains: HashMap::new(),
                txns: HashMap::new(),
                next_ts: 1,
                known_tables: HashSet::new(),
                table_read_ts: HashMap::new(),
            }),
        }
    }

    fn ensure_table(&self, inner: &mut Inner, table: TableId) {
        if inner.known_tables.insert(table) {
            self.recorder
                .register_table(table, &self.catalog.table_name(table));
        }
    }

    fn check_active(inner: &Inner, txn: TxnId) -> OpResult<u64> {
        match inner.txns.get(&txn) {
            None => Err(EngineError::UnknownTxn),
            Some(s) => match s.status {
                TxnStatus::Active => Ok(s.ts),
                TxnStatus::Aborted => Err(EngineError::Aborted(AbortReason::CycleDetected)),
                TxnStatus::Committed => Err(EngineError::UnknownTxn),
            },
        }
    }

    fn do_abort(&self, inner: &mut Inner, txn: TxnId) {
        let Some(state) = inner.txns.get_mut(&txn) else {
            return;
        };
        if state.status != TxnStatus::Active {
            return;
        }
        state.status = TxnStatus::Aborted;
        let mut written: Vec<(TableId, Key)> = state.written.iter().copied().collect();
        written.sort_unstable();
        // Cascade in TxnId order: the recorded abort sequence must be a
        // pure function of the schedule, not of hash iteration order.
        let mut readers: Vec<TxnId> = state.readers_of_mine.iter().copied().collect();
        readers.sort_unstable();
        for key in written {
            if let Some(chain) = inner.chains.get_mut(&key) {
                chain.versions.retain(|v| v.writer != txn);
            }
        }
        self.recorder.abort(txn);
        // Cascade dirty readers.
        for r in readers {
            if inner.txns.get(&r).map(|s| s.status) == Some(TxnStatus::Active) {
                adya_obs::counter!("engine.mvto.cascade_abort").inc();
            }
            self.do_abort(inner, r);
        }
    }

    /// Common write/delete path.
    fn do_write(&self, txn: TxnId, table: TableId, key: Key, value: Option<Value>) -> OpResult<()> {
        let mut inner = self.inner.lock();
        let ts = Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);

        // Too-late check: the version this write would supersede must
        // not have been read by a younger transaction.
        if let Some(chain) = inner.chains.get(&(table, key)) {
            if let Some(prev) = chain.visible_at(ts) {
                if prev.writer != txn && prev.rts > ts {
                    adya_obs::counter!("engine.mvto.too_late_abort").inc();
                    adya_obs::global().event(
                        "engine.mvto.too_late_abort",
                        vec![
                            ("txn".into(), adya_obs::Field::from(u64::from(txn.0))),
                            (
                                "reason".into(),
                                adya_obs::Field::from(
                                    "superseded version already read by a younger txn",
                                ),
                            ),
                        ],
                    );
                    self.do_abort(&mut inner, txn);
                    return Err(EngineError::Aborted(AbortReason::ValidationFailed));
                }
            }
        }

        // Deleting an absent row is a no-op.
        let absent = inner
            .chains
            .get(&(table, key))
            .and_then(|c| c.visible_at(ts))
            .map(|v| v.value.is_none())
            .unwrap_or(true);
        if value.is_none() && absent {
            return Ok(());
        }
        // A dead version must end its object's version order, so a
        // delete whose timestamp slot precedes any younger version is
        // too late.
        if value.is_none() {
            let younger_exists = inner
                .chains
                .get(&(table, key))
                .map(|c| c.versions.iter().any(|v| v.wts > ts && v.writer != txn))
                .unwrap_or(false);
            if younger_exists {
                adya_obs::counter!("engine.mvto.too_late_abort").inc();
                adya_obs::global().event(
                    "engine.mvto.too_late_abort",
                    vec![
                        ("txn".into(), adya_obs::Field::from(u64::from(txn.0))),
                        (
                            "reason".into(),
                            adya_obs::Field::from("delete behind a younger version"),
                        ),
                    ],
                );
                self.do_abort(&mut inner, txn);
                return Err(EngineError::Aborted(AbortReason::ValidationFailed));
            }
        }

        // Ensure the chain exists (MVTO keeps one incarnation per key:
        // timestamp order interleaves lifetimes, so re-creation reuses
        // the object unless a committed dead version already ended it —
        // in that case the key stays dead for later timestamps and we
        // reject the write as too late).
        if !inner.chains.contains_key(&(table, key)) {
            // Insert of a fresh row: a younger transaction may already
            // have predicate-scanned this table; its version set chose
            // the row's unborn version, so an older insert would be a
            // phantom behind its back — too late.
            if inner.table_read_ts.get(&table).copied().unwrap_or(0) > ts {
                adya_obs::counter!("engine.mvto.too_late_abort").inc();
                adya_obs::global().event(
                    "engine.mvto.too_late_abort",
                    vec![
                        ("txn".into(), adya_obs::Field::from(u64::from(txn.0))),
                        (
                            "reason".into(),
                            adya_obs::Field::from("insert behind a younger predicate scan"),
                        ),
                    ],
                );
                self.do_abort(&mut inner, txn);
                return Err(EngineError::Aborted(AbortReason::ValidationFailed));
            }
            let obj = self.recorder.register_object(table, key, 0);
            inner.chains.insert(
                (table, key),
                TsChain {
                    object: obj,
                    versions: Vec::new(),
                },
            );
        }
        let chain = inner.chains.get_mut(&(table, key)).expect("just ensured");
        // Re-insertion after a *dead* version would need a fresh
        // incarnation whose position in timestamp order is ambiguous;
        // keep the model simple by rejecting writes that follow any
        // dead version in timestamp order.
        let follows_dead = chain
            .versions
            .iter()
            .any(|v| v.wts <= ts && v.value.is_none());
        if value.is_some() && follows_dead {
            // Includes the transaction's own delete: re-insertion is a
            // distinct object in the model, and a fresh incarnation
            // has no well-defined slot in timestamp order.
            adya_obs::counter!("engine.mvto.too_late_abort").inc();
            adya_obs::global().event(
                "engine.mvto.too_late_abort",
                vec![
                    ("txn".into(), adya_obs::Field::from(u64::from(txn.0))),
                    (
                        "reason".into(),
                        adya_obs::Field::from("write after a dead version in timestamp order"),
                    ),
                ],
            );
            self.do_abort(&mut inner, txn);
            return Err(EngineError::Aborted(AbortReason::ValidationFailed));
        }

        let obj = inner.chains[&(table, key)].object;
        let vid = match &value {
            Some(v) => self.recorder.write(txn, obj, v.clone()),
            None => self.recorder.delete(txn, obj),
        };
        // A transaction rewriting the object replaces its own version
        // in place (same wts slot, higher seq); any transaction that
        // dirty-read the superseded seq now holds an intermediate
        // version (G1b) and must be cascaded.
        let rewriting = inner.chains[&(table, key)]
            .versions
            .iter()
            .any(|v| v.writer == txn);
        if rewriting {
            let mut doomed: Vec<TxnId> = inner.txns[&txn]
                .readers_of_mine
                .iter()
                .copied()
                .filter(|r| *r != txn)
                .collect();
            doomed.sort_unstable();
            for r in doomed {
                if inner.txns.get(&r).map(|s| s.status) == Some(TxnStatus::Active) {
                    self.do_abort(&mut inner, r);
                }
            }
        }
        let chain = inner.chains.get_mut(&(table, key)).expect("present");
        if let Some(own) = chain.versions.iter_mut().find(|v| v.writer == txn) {
            own.seq = vid.seq;
            own.value = value;
        } else {
            chain.insert(TsVersion {
                writer: txn,
                wts: ts,
                rts: ts,
                seq: vid.seq,
                value,
                committed: false,
            });
        }
        adya_obs::histogram!("engine.mvto.chain_len").record(chain.versions.len() as u64);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .written
            .insert((table, key));
        Ok(())
    }
}

impl Engine for MvtoEngine {
    fn name(&self) -> String {
        "MVTO".to_string()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn begin(&self) -> TxnId {
        let t = self.recorder.begin_txn();
        self.recorder.set_level(t, RequestedLevel::PL3);
        let mut inner = self.inner.lock();
        let ts = inner.next_ts;
        inner.next_ts += 1;
        inner.txns.insert(
            t,
            TxnState {
                status: TxnStatus::Active,
                ts,
                read_from: HashSet::new(),
                readers_of_mine: HashSet::new(),
                written: HashSet::new(),
            },
        );
        t
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        let ts = Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let Some(chain) = inner.chains.get_mut(&(table, key)) else {
            return Ok(None);
        };
        let Some(v) = chain.visible_at_mut(ts) else {
            return Ok(None);
        };
        v.rts = v.rts.max(ts);
        let (writer, vid, value, committed) =
            (v.writer, v.version_id(), v.value.clone(), v.committed);
        let obj = chain.object;
        if value.is_none() {
            return Ok(None); // dead at this timestamp
        }
        self.recorder.read(txn, obj, vid);
        if writer != txn && !committed {
            inner
                .txns
                .get_mut(&txn)
                .expect("active")
                .read_from
                .insert(writer);
            if let Some(ws) = inner.txns.get_mut(&writer) {
                ws.readers_of_mine.insert(txn);
            }
        }
        Ok(value)
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        self.do_write(txn, table, key, Some(value))
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        self.do_write(txn, table, key, None)
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        let mut inner = self.inner.lock();
        let ts = Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, pred.table);
        let table = pred.table;
        // Scan in key order: the recorded read sequence must not
        // depend on hash iteration order.
        let mut keys: Vec<(TableId, Key)> = inner
            .chains
            .keys()
            .filter(|(t, _)| *t == table)
            .copied()
            .collect();
        keys.sort_unstable();
        {
            let e = inner.table_read_ts.entry(table).or_insert(0);
            *e = (*e).max(ts);
        }
        let mut vset = Vec::new();
        let mut matches = Vec::new();
        let mut dirty_from: Vec<TxnId> = Vec::new();
        for ck in keys {
            let chain = inner.chains.get_mut(&ck).expect("listed");
            let obj = chain.object;
            let Some(v) = chain.visible_at_mut(ts) else {
                continue;
            };
            v.rts = v.rts.max(ts);
            vset.push((obj, v.version_id()));
            if v.writer != txn && !v.committed {
                dirty_from.push(v.writer);
            }
            if let Some(value) = &v.value {
                if pred.matches(value) {
                    matches.push((ck.1, obj, v.version_id(), value.clone()));
                }
            }
        }
        self.recorder.predicate_read(txn, pred, vset);
        for (_, obj, vid, _) in &matches {
            self.recorder.read(txn, *obj, *vid);
        }
        for w in dirty_from {
            inner
                .txns
                .get_mut(&txn)
                .expect("active")
                .read_from
                .insert(w);
            if let Some(ws) = inner.txns.get_mut(&w) {
                ws.readers_of_mine.insert(txn);
            }
        }
        Ok(matches.into_iter().map(|(k, _, _, v)| (k, v)).collect())
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        // Commit dependencies: versions read must be committed.
        let state = &inner.txns[&txn];
        let mut holders = Vec::new();
        let mut cascade = false;
        for &w in &state.read_from {
            match inner.txns.get(&w).map(|s| s.status) {
                Some(TxnStatus::Active) => holders.push(w),
                Some(TxnStatus::Aborted) => cascade = true,
                _ => {}
            }
        }
        if cascade {
            self.do_abort(&mut inner, txn);
            return Err(EngineError::Aborted(AbortReason::CascadedAbort));
        }
        if !holders.is_empty() {
            holders.sort_unstable();
            return Err(EngineError::Blocked { holders });
        }
        let written: Vec<(TableId, Key)> = inner.txns[&txn].written.iter().copied().collect();
        for key in written {
            if let Some(chain) = inner.chains.get_mut(&key) {
                for v in &mut chain.versions {
                    if v.writer == txn {
                        v.committed = true;
                    }
                }
            }
        }
        inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Committed;
        self.recorder.commit(txn);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        match inner.txns.get(&txn) {
            None => return Err(EngineError::UnknownTxn),
            Some(s) if s.status != TxnStatus::Active => return Ok(()),
            _ => {}
        }
        self.do_abort(&mut inner, txn);
        Ok(())
    }

    fn set_event_tap(&self, tap: crate::recorder::EventTap) {
        self.recorder.set_tap(tap);
    }

    fn set_seq_event_tap(&self, tap: crate::recorder::SeqEventTap) {
        self.recorder.set_seq_tap(tap);
    }

    fn finalize(&self) -> History {
        let inner = self.inner.lock();
        for chain in inner.chains.values() {
            self.recorder
                .set_version_order(chain.object, chain.committed_order());
        }
        self.recorder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_core::{classify, IsolationLevel};

    fn setup() -> (MvtoEngine, TableId) {
        let e = MvtoEngine::new();
        let t = e.catalog().table("acct");
        (e, t)
    }

    #[test]
    fn version_order_follows_timestamps_not_commit_order() {
        // The H_write_order shape: older T1 commits AFTER younger…
        // here: T1 (ts 1) writes x but commits after T2 (ts 2) does.
        let (e, tbl) = setup();
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t2).unwrap(); // T2 commits first
        e.commit(t1).unwrap();
        let h = e.finalize();
        let x = h.object_by_name("table0#1").unwrap();
        // Version order is timestamp order: x1 << x2 — even though
        // commit order was T2 then T1.
        assert!(h.version_precedes(x, VersionId::new(t1, 1), VersionId::new(t2, 1)));
        let c1 = h.txn(t1).unwrap().end_event;
        let c2 = h.txn(t2).unwrap().end_event;
        assert!(c2 < c1, "commit order really was reversed");
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn late_write_aborts() {
        let (e, tbl) = setup();
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin(); // ts 2
        let t2 = e.begin(); // ts 3
                            // Younger T2 reads the version T1 would supersede.
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(0)));
        // T1's write is now too late.
        assert!(matches!(
            e.write(t1, tbl, Key(1), Value::Int(9)),
            Err(EngineError::Aborted(AbortReason::ValidationFailed))
        ));
        e.commit(t2).unwrap();
    }

    #[test]
    fn older_reader_ignores_younger_writer() {
        let (e, tbl) = setup();
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin(); // ts 2
        let t2 = e.begin(); // ts 3
        e.write(t2, tbl, Key(1), Value::Int(9)).unwrap();
        e.commit(t2).unwrap();
        // T1 (older) still reads T0's version: snapshot-by-timestamp.
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(0)));
        e.commit(t1).unwrap();
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn dirty_read_takes_commit_dependency_and_cascades() {
        let (e, tbl) = setup();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        let t2 = e.begin();
        // T2 reads T1's uncommitted version (wts 1 <= ts 2).
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(5)));
        // T2 cannot commit before T1.
        assert!(matches!(
            e.commit(t2),
            Err(EngineError::Blocked { ref holders }) if holders == &[t1]
        ));
        e.abort(t1).unwrap();
        // Cascade: T2 was aborted with T1.
        assert!(matches!(e.commit(t2), Err(EngineError::Aborted(_))));
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 0);
    }

    #[test]
    fn rewrite_after_dirty_read_cascades_reader() {
        let (e, tbl) = setup();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        // T1 rewrites: T2's read became intermediate — cascaded.
        e.write(t1, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t1).unwrap();
        assert!(matches!(e.commit(t2), Err(EngineError::Aborted(_))));
        let h = e.finalize();
        use adya_core::IsolationLevel;
        assert!(adya_core::classify(&h).satisfies(IsolationLevel::PL2));
    }

    #[test]
    fn histories_check_at_pl3_under_workloads() {
        // See also tests/engine_soundness.rs which runs full
        // workloads; this is the smoke version.
        let (e, tbl) = setup();
        let t0 = e.begin();
        for k in 0..3u64 {
            e.write(t0, tbl, Key(k), Value::Int(10)).unwrap();
        }
        e.commit(t0).unwrap();
        for _ in 0..5 {
            let t = e.begin();
            let a = e.read(t, tbl, Key(0)).unwrap().unwrap().as_int().unwrap();
            if e.write(t, tbl, Key(0), Value::Int(a + 1)).is_ok() {
                let _ = e.commit(t);
            }
        }
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn older_insert_after_younger_select_is_too_late() {
        // Phantom guard regression: T2 (younger) scans the predicate,
        // then T1 (older) tries to insert a fresh matching row whose
        // timestamp slot precedes the scan — must abort, or the
        // committed history would contain a G2 cycle (the reader's
        // predicate read anti-depends on a transaction serialized
        // before it).
        let (e, tbl) = setup();
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t0 = e.begin();
        e.write(t0, tbl, Key(9), Value::Int(7)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin(); // ts 2 (older)
        let t2 = e.begin(); // ts 3 (younger)
        assert_eq!(e.select(t2, &p).unwrap().len(), 1);
        assert!(matches!(
            e.write(t1, tbl, Key(5), Value::Int(42)),
            Err(EngineError::Aborted(AbortReason::ValidationFailed))
        ));
        e.commit(t2).unwrap();
        let h = e.finalize();
        use adya_core::IsolationLevel;
        assert!(adya_core::classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn select_reads_timestamp_consistent_versions() {
        let (e, tbl) = setup();
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t2, tbl, Key(2), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        // T1 (older) must not see T2's insert.
        assert_eq!(e.select(t1, &p).unwrap().len(), 1);
        e.commit(t1).unwrap();
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }
}

//! A serialization-graph-testing certifier.
//!
//! This engine is the most direct executable reading of the paper: it
//! tracks (a conservative superset of) the paper's own conflict edges
//! *online* — write-dependencies, read-dependencies and
//! anti-dependencies — and aborts a transaction the moment one of its
//! operations would close a cycle proscribed at the engine's
//! certification level. Reads are allowed to observe **uncommitted**
//! tips (the mobile / disconnected-operation scenario of §3), with
//! commit-ordering obligations enforced instead:
//!
//! * a transaction that read from an uncommitted writer cannot commit
//!   until the writer commits (no G1a/G1b for committed transactions);
//! * if the writer aborts, the reader is cascaded.
//!
//! The result is an engine that violates P0, P1 and P2 routinely while
//! every history it commits passes the corresponding PL level — the
//! mechanical witness for the paper's permissiveness claim.

use std::collections::{HashMap, HashSet};

use adya_graph::DiGraph;

use adya_history::{History, RequestedLevel, TxnId, Value};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::recorder::Recorder;
use crate::store::Store;
use crate::types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

/// Which cycles the certifier proscribes — the engine's isolation
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyLevel {
    /// Abort only on write-dependency cycles (G0) ⇒ PL-1. Dirty reads
    /// commit freely.
    PL1,
    /// Additionally proscribe dependency cycles (G1c) and enforce the
    /// commit-ordering obligations (no G1a/G1b) ⇒ PL-2.
    PL2,
    /// Proscribe every cycle ⇒ PL-3 (conflict-serializability).
    PL3,
}

impl CertifyLevel {
    fn to_requested(self) -> RequestedLevel {
        match self {
            CertifyLevel::PL1 => RequestedLevel::PL1,
            CertifyLevel::PL2 => RequestedLevel::PL2,
            CertifyLevel::PL3 => RequestedLevel::PL3,
        }
    }
}

/// Edge kinds of the online conflict graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dep {
    Ww,
    Wr,
    Rw,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

struct TxnState {
    status: TxnStatus,
    /// Writers this transaction read uncommitted data from.
    read_from: HashSet<TxnId>,
    /// Chains this transaction wrote.
    written_chains: HashSet<usize>,
    /// Readers that consumed this transaction's uncommitted writes
    /// (for cascading aborts).
    readers_of_mine: HashSet<TxnId>,
}

struct Inner {
    store: Store,
    txns: HashMap<TxnId, TxnState>,
    graph: DiGraph<TxnId, Dep>,
    /// Readers per chain: (reader, version read).
    chain_readers: HashMap<usize, Vec<(TxnId, adya_history::VersionId)>>,
    /// Predicate readers per table (phantom-conservative).
    table_readers: HashMap<TableId, Vec<TxnId>>,
    stamp: u64,
    known_tables: HashSet<TableId>,
    incarnations: HashMap<(TableId, Key), u32>,
}

/// The SGT certifier engine.
pub struct SgtEngine {
    catalog: Catalog,
    recorder: Recorder,
    level: CertifyLevel,
    inner: Mutex<Inner>,
}

impl SgtEngine {
    /// Creates a certifier at the given level.
    pub fn new(level: CertifyLevel) -> SgtEngine {
        SgtEngine {
            catalog: Catalog::new(),
            recorder: Recorder::new(),
            level,
            inner: Mutex::new(Inner {
                store: Store::new(),
                txns: HashMap::new(),
                graph: DiGraph::new(),
                chain_readers: HashMap::new(),
                table_readers: HashMap::new(),
                stamp: 0,
                known_tables: HashSet::new(),
                incarnations: HashMap::new(),
            }),
        }
    }

    fn ensure_table(&self, inner: &mut Inner, table: TableId) {
        if inner.known_tables.insert(table) {
            self.recorder
                .register_table(table, &self.catalog.table_name(table));
        }
    }

    fn check_active(inner: &Inner, txn: TxnId) -> OpResult<()> {
        match inner.txns.get(&txn) {
            None => Err(EngineError::UnknownTxn),
            Some(s) => match s.status {
                TxnStatus::Active => Ok(()),
                TxnStatus::Aborted => Err(EngineError::Aborted(AbortReason::CycleDetected)),
                TxnStatus::Committed => Err(EngineError::UnknownTxn),
            },
        }
    }

    /// True if a proscribed cycle *through `txn`* exists in the
    /// conflict graph restricted to non-aborted nodes.
    ///
    /// Every edge the engine adds is incident to the operating
    /// transaction, so any newly-created cycle passes through it; a
    /// DFS from `txn` back to itself is therefore a complete check and
    /// avoids rebuilding the (ever-growing) graph per operation.
    fn on_proscribed_cycle(inner: &Inner, txn: TxnId, level: CertifyLevel) -> bool {
        let edge_ok = |k: &Dep| match level {
            CertifyLevel::PL1 => *k == Dep::Ww,
            CertifyLevel::PL2 => *k != Dep::Rw,
            CertifyLevel::PL3 => true,
        };
        let alive = |t: &TxnId| inner.txns.get(t).map(|s| s.status) != Some(TxnStatus::Aborted);
        if !alive(&txn) {
            return false;
        }
        let mut stack: Vec<TxnId> = Vec::new();
        let mut seen: HashSet<TxnId> = HashSet::new();
        for e in inner.graph.edges_from(&txn) {
            if edge_ok(e.label) && alive(e.to) && seen.insert(*e.to) {
                stack.push(*e.to);
            }
        }
        while let Some(v) = stack.pop() {
            if v == txn {
                return true;
            }
            for e in inner.graph.edges_from(&v) {
                if !edge_ok(e.label) || !alive(e.to) {
                    continue;
                }
                if *e.to == txn {
                    return true;
                }
                if seen.insert(*e.to) {
                    stack.push(*e.to);
                }
            }
        }
        false
    }

    /// Aborts `txn` and cascades to its dirty readers (at PL-2+).
    fn do_abort(&self, inner: &mut Inner, txn: TxnId) {
        let state = inner.txns.get_mut(&txn).expect("known");
        if state.status != TxnStatus::Active {
            return;
        }
        state.status = TxnStatus::Aborted;
        let mut written: Vec<usize> = state.written_chains.iter().copied().collect();
        written.sort_unstable();
        // Cascade in TxnId order: the recorded abort sequence must be a
        // pure function of the schedule, not of hash iteration order.
        let mut readers: Vec<TxnId> = state.readers_of_mine.iter().copied().collect();
        readers.sort_unstable();
        for ix in written {
            inner.store.chains[ix].remove_writer(txn);
            if inner.store.chains[ix].versions.is_empty() {
                let (table, key) = {
                    let c = &inner.store.chains[ix];
                    (c.table, c.key)
                };
                inner.store.retire_if_current(table, key, ix);
            }
        }
        self.recorder.abort(txn);
        if self.level != CertifyLevel::PL1 {
            for r in readers {
                if inner.txns.get(&r).map(|s| s.status) == Some(TxnStatus::Active) {
                    self.do_abort(inner, r);
                }
            }
        }
    }

    /// Adds the conservative conflict edges for a write by `txn` to
    /// `chain_ix`, then certifies; aborts `txn` on a proscribed cycle.
    fn edges_for_write(&self, inner: &mut Inner, txn: TxnId, chain_ix: usize) -> OpResult<()> {
        // ww from every earlier writer in the chain (a superset of the
        // true version-order adjacency, sound under aborts).
        let writers: Vec<TxnId> = inner.store.chains[chain_ix]
            .versions
            .iter()
            .map(|v| v.writer)
            .filter(|&w| w != txn)
            .collect();
        for w in writers {
            inner.graph.add_edge_dedup(w, txn, Dep::Ww);
        }
        // rw from every earlier reader of the chain.
        let readers: Vec<TxnId> = inner
            .chain_readers
            .get(&chain_ix)
            .map(|v| v.iter().map(|&(r, _)| r).filter(|&r| r != txn).collect())
            .unwrap_or_default();
        for r in readers {
            inner.graph.add_edge_dedup(r, txn, Dep::Rw);
        }
        // This write may have turned the writer's *own earlier*
        // version into an intermediate one; any other transaction that
        // read it is now headed for G1b and must be cascaded (PL-2+).
        if self.level != CertifyLevel::PL1 {
            let new_seq = inner.store.chains[chain_ix]
                .own_latest(txn)
                .map(|v| v.seq)
                .unwrap_or(1);
            let doomed: Vec<TxnId> = inner
                .chain_readers
                .get(&chain_ix)
                .map(|v| {
                    v.iter()
                        .filter(|&&(r, vid)| r != txn && vid.txn == txn && vid.seq < new_seq)
                        .map(|&(r, _)| r)
                        .collect()
                })
                .unwrap_or_default();
            for r in doomed {
                if inner.txns.get(&r).map(|s| s.status) == Some(TxnStatus::Active) {
                    self.do_abort(inner, r);
                }
            }
        }
        // rw from predicate readers of the table (phantom edges).
        let table = inner.store.chains[chain_ix].table;
        let preaders: Vec<TxnId> = inner
            .table_readers
            .get(&table)
            .map(|v| v.iter().copied().filter(|&r| r != txn).collect())
            .unwrap_or_default();
        for r in preaders {
            inner.graph.add_edge_dedup(r, txn, Dep::Rw);
        }
        self.certify(inner, txn)
    }

    fn certify(&self, inner: &mut Inner, txn: TxnId) -> OpResult<()> {
        if Self::on_proscribed_cycle(inner, txn, self.level) {
            adya_obs::counter!("engine.sgt.cycle_abort").inc();
            self.do_abort(inner, txn);
            return Err(EngineError::Aborted(AbortReason::CycleDetected));
        }
        Ok(())
    }
}

impl Engine for SgtEngine {
    fn name(&self) -> String {
        format!("SGT-{:?}", self.level)
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn begin(&self) -> TxnId {
        let t = self.recorder.begin_txn();
        self.recorder.set_level(t, self.level.to_requested());
        let mut inner = self.inner.lock();
        inner.graph.add_node(t);
        inner.txns.insert(
            t,
            TxnState {
                status: TxnStatus::Active,
                read_from: HashSet::new(),
                written_chains: HashSet::new(),
                readers_of_mine: HashSet::new(),
            },
        );
        t
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let Some(chain_ix) = inner.store.chain_index(table, key) else {
            return Ok(None);
        };
        let selected = {
            let chain = &inner.store.chains[chain_ix];
            chain
                .own_latest(txn)
                .or_else(|| chain.tip())
                .map(|v| (v.writer, v.version_id(), v.value.clone(), v.committed))
        };
        let Some((writer, vid, value, committed)) = selected else {
            return Ok(None);
        };
        if value.is_none() {
            return Ok(None); // dead tip: row absent
        }
        let obj = inner.store.chains[chain_ix].object;
        self.recorder.read(txn, obj, vid);
        inner
            .chain_readers
            .entry(chain_ix)
            .or_default()
            .push((txn, vid));
        if writer != txn {
            inner.graph.add_edge_dedup(writer, txn, Dep::Wr);
            if !committed {
                inner
                    .txns
                    .get_mut(&txn)
                    .expect("active")
                    .read_from
                    .insert(writer);
                if let Some(ws) = inner.txns.get_mut(&writer) {
                    ws.readers_of_mine.insert(txn);
                }
            }
            self.certify(&mut inner, txn)?;
        }
        Ok(value)
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let existing_ix = inner.store.chain_index(table, key);
        let needs_new = match existing_ix {
            None => true,
            Some(ix) => {
                let chain = &inner.store.chains[ix];
                chain.versions.is_empty()
                    || chain.tip().is_some_and(|v| v.is_dead())
                    || chain.own_latest(txn).is_some_and(|v| v.is_dead())
            }
        };
        let chain_ix = if needs_new {
            let inc = {
                let e = inner.incarnations.entry((table, key)).or_insert(0);
                let v = *e;
                *e += 1;
                v
            };
            let obj = self.recorder.register_object(table, key, inc);
            inner.store.new_incarnation(table, key, obj)
        } else {
            existing_ix.expect("checked")
        };
        let obj = inner.store.chains[chain_ix].object;
        let vid = self.recorder.write(txn, obj, value.clone());
        inner.store.chains[chain_ix].push(txn, vid.seq, Some(value));
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .written_chains
            .insert(chain_ix);
        self.edges_for_write(&mut inner, txn, chain_ix)
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let Some(chain_ix) = inner.store.chain_index(table, key) else {
            return Ok(());
        };
        let visible = {
            let chain = &inner.store.chains[chain_ix];
            chain
                .own_latest(txn)
                .or_else(|| chain.tip())
                .is_some_and(|v| !v.is_dead())
        };
        if !visible {
            return Ok(());
        }
        let obj = inner.store.chains[chain_ix].object;
        let vid = self.recorder.delete(txn, obj);
        inner.store.chains[chain_ix].push(txn, vid.seq, None);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .written_chains
            .insert(chain_ix);
        self.edges_for_write(&mut inner, txn, chain_ix)
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, pred.table);
        let table = pred.table;
        let mut vset = Vec::new();
        let mut matches = Vec::new();
        let mut edge_sources: Vec<(TxnId, bool)> = Vec::new(); // (writer, committed)
        let mut read_chains = Vec::new();
        for &ix in inner.store.table_chains(table) {
            let chain = &inner.store.chains[ix];
            let Some(v) = chain.own_latest(txn).or_else(|| chain.tip()) else {
                continue;
            };
            vset.push((chain.object, v.version_id()));
            read_chains.push((ix, v.version_id()));
            if v.writer != txn {
                edge_sources.push((v.writer, v.committed));
            }
            if let Some(value) = &v.value {
                if pred.matches(value) {
                    matches.push((chain.key, chain.object, v.version_id(), value.clone()));
                }
            }
        }
        self.recorder.predicate_read(txn, pred, vset);
        for (_, obj, vid, _) in &matches {
            self.recorder.read(txn, *obj, *vid);
        }
        for (ix, vid) in read_chains {
            inner.chain_readers.entry(ix).or_default().push((txn, vid));
        }
        inner.table_readers.entry(table).or_default().push(txn);
        for (writer, committed) in edge_sources {
            inner.graph.add_edge_dedup(writer, txn, Dep::Wr);
            if !committed {
                inner
                    .txns
                    .get_mut(&txn)
                    .expect("active")
                    .read_from
                    .insert(writer);
                if let Some(ws) = inner.txns.get_mut(&writer) {
                    ws.readers_of_mine.insert(txn);
                }
            }
        }
        self.certify(&mut inner, txn)?;
        Ok(matches.into_iter().map(|(k, _, _, v)| (k, v)).collect())
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        if self.level != CertifyLevel::PL1 {
            // Commit-ordering obligations: wait for dirty-read sources.
            let state = &inner.txns[&txn];
            let mut holders = Vec::new();
            let mut cascade = false;
            for &w in &state.read_from {
                match inner.txns.get(&w).map(|s| s.status) {
                    Some(TxnStatus::Active) => holders.push(w),
                    Some(TxnStatus::Aborted) => cascade = true,
                    _ => {}
                }
            }
            if cascade {
                adya_obs::counter!("engine.sgt.cascade_abort").inc();
                self.do_abort(&mut inner, txn);
                return Err(EngineError::Aborted(AbortReason::CascadedAbort));
            }
            if !holders.is_empty() {
                holders.sort_unstable();
                return Err(EngineError::Blocked { holders });
            }
        }
        // Final certification.
        if Self::on_proscribed_cycle(&inner, txn, self.level) {
            adya_obs::counter!("engine.sgt.cycle_abort").inc();
            self.do_abort(&mut inner, txn);
            return Err(EngineError::Aborted(AbortReason::CycleDetected));
        }
        inner.stamp += 1;
        let stamp = inner.stamp;
        let written: Vec<usize> = inner.txns[&txn].written_chains.iter().copied().collect();
        for ix in written {
            inner.store.chains[ix].commit_writer(txn, stamp);
        }
        inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Committed;
        self.recorder.commit(txn);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        match inner.txns.get(&txn) {
            None => return Err(EngineError::UnknownTxn),
            Some(s) if s.status != TxnStatus::Active => return Ok(()),
            _ => {}
        }
        self.do_abort(&mut inner, txn);
        Ok(())
    }

    fn set_event_tap(&self, tap: crate::recorder::EventTap) {
        self.recorder.set_tap(tap);
    }

    fn set_seq_event_tap(&self, tap: crate::recorder::SeqEventTap) {
        self.recorder.set_seq_tap(tap);
    }

    fn finalize(&self) -> History {
        let inner = self.inner.lock();
        for chain in &inner.store.chains {
            self.recorder
                .set_version_order(chain.object, chain.committed_order());
        }
        self.recorder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(level: CertifyLevel) -> (SgtEngine, TableId) {
        let e = SgtEngine::new(level);
        let t = e.catalog().table("acct");
        (e, t)
    }

    #[test]
    fn h1_prime_scenario_commits() {
        // T2 reads T1's uncommitted writes of x and y; both commit in
        // order. Forbidden by P1; accepted here and PL-3 valid.
        let (e, tbl) = setup(CertifyLevel::PL3);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(5)).unwrap();
        e.write(t0, tbl, Key(2), Value::Int(5)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        e.read(t1, tbl, Key(1)).unwrap();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.read(t1, tbl, Key(2)).unwrap();
        e.write(t1, tbl, Key(2), Value::Int(9)).unwrap();
        let t2 = e.begin();
        // Dirty reads of both of T1's writes.
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        assert_eq!(e.read(t2, tbl, Key(2)).unwrap(), Some(Value::Int(9)));
        // T2 cannot commit before T1 (commit ordering).
        assert!(matches!(
            e.commit(t2),
            Err(EngineError::Blocked { ref holders }) if holders == &[t1]
        ));
        e.commit(t1).unwrap();
        e.commit(t2).unwrap();
    }

    #[test]
    fn cascaded_abort_on_dirty_read() {
        let (e, tbl) = setup(CertifyLevel::PL3);
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        e.abort(t1).unwrap();
        assert!(matches!(
            e.commit(t2),
            Err(EngineError::Aborted(AbortReason::CascadedAbort))
                | Err(EngineError::Aborted(AbortReason::CycleDetected))
        ));
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 0);
    }

    #[test]
    fn read_skew_cycle_aborts_at_pl3() {
        // T2 reads old x, T1 updates x and y, T2 then reads new y:
        // the rw + wr cycle must abort someone.
        let (e, tbl) = setup(CertifyLevel::PL3);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(5)).unwrap();
        e.write(t0, tbl, Key(2), Value::Int(5)).unwrap();
        e.commit(t0).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t1, tbl, Key(2), Value::Int(9)).unwrap();
        e.commit(t1).unwrap();
        // T2 now reads the new y: closes T1 -wr-> T2 -rw-> T1.
        let r = e.read(t2, tbl, Key(2));
        assert!(matches!(r, Err(EngineError::Aborted(_))), "{r:?}");
    }

    #[test]
    fn pl1_allows_dirty_reads_to_commit() {
        let (e, tbl) = setup(CertifyLevel::PL1);
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        // At PL-1 the reader may commit before the writer.
        e.commit(t2).unwrap();
        e.abort(t1).unwrap(); // G1a in the history — allowed at PL-1
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 1);
    }

    #[test]
    fn write_cycle_aborts_even_at_pl1() {
        let (e, tbl) = setup(CertifyLevel::PL1);
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap(); // ww T1->T2
        e.write(t2, tbl, Key(2), Value::Int(2)).unwrap();
        // T1 writing key 2 closes a ww cycle: abort.
        assert!(matches!(
            e.write(t1, tbl, Key(2), Value::Int(1)),
            Err(EngineError::Aborted(AbortReason::CycleDetected))
        ));
    }

    #[test]
    fn phantom_edge_aborts_serializability_violation() {
        let (e, tbl) = setup(CertifyLevel::PL3);
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let sums = e.catalog().table("sums");
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(10)).unwrap();
        e.write(t0, sums, Key(0), Value::Int(10)).unwrap();
        e.commit(t0).unwrap();
        // T1 queries the predicate, T2 inserts a matching row and
        // updates the sum, T1 then reads the sum: Hphantom shape.
        let t1 = e.begin();
        e.select(t1, &p).unwrap();
        let t2 = e.begin();
        e.write(t2, tbl, Key(2), Value::Int(10)).unwrap();
        e.write(t2, sums, Key(0), Value::Int(20)).unwrap();
        e.commit(t2).unwrap();
        let r = e.read(t1, sums, Key(0));
        assert!(
            matches!(r, Err(EngineError::Aborted(_))),
            "phantom cycle must abort T1, got {r:?}"
        );
    }

    #[test]
    fn rewrite_after_dirty_read_cascades_reader() {
        // Regression: T2 reads T1's first version of x; T1 writes x
        // again. T2's read is now intermediate (G1b) — T2 must be
        // cascaded instead of committing.
        let (e, tbl) = setup(CertifyLevel::PL2);
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.write(t1, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t1).unwrap();
        assert!(matches!(e.commit(t2), Err(EngineError::Aborted(_))));
        let h = e.finalize();
        use adya_core::IsolationLevel;
        assert!(adya_core::classify(&h).satisfies(IsolationLevel::PL2));
    }

    #[test]
    fn committed_histories_from_sgt_are_recorded() {
        let (e, tbl) = setup(CertifyLevel::PL3);
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        e.commit(t2).unwrap();
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 2);
    }
}

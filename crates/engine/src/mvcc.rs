//! Multi-version concurrency control: Snapshot Isolation and
//! multi-version read committed.
//!
//! Snapshot Isolation (Oracle's "serializable", analyzed in the
//! Berenson et al. critique and given a generalized definition —
//! PL-SI — in Adya's thesis) reads a begin-time snapshot and enforces
//! first-committer-wins on write sets. Multi-version read committed
//! reads the latest committed version at each read. Neither ever
//! blocks a reader, and the version order of each object equals commit
//! order — so G0/G1 are excluded *structurally*, while write skew
//! (G2, exactly two anti-dependency edges) remains possible under SI:
//! the shape the checker's PL-SI level admits and PL-3 rejects.

use std::collections::{HashMap, HashSet};

use adya_history::{History, RequestedLevel, TxnId, Value};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::recorder::Recorder;
use crate::store::Store;
use crate::types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

/// Which multi-version flavour an [`MvccEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvccMode {
    /// Begin-time snapshot reads, first-committer-wins writes (PL-SI).
    SnapshotIsolation,
    /// Latest-committed reads at each operation, unconditional
    /// installs (a deliberately weak PL-2 engine: lost updates are
    /// possible and the checker should find the G2 cycles).
    ReadCommitted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

struct TxnState {
    status: TxnStatus,
    snapshot: u64,
    writes: Vec<(TableId, Key, Option<Value>)>,
}

struct Inner {
    store: Store,
    txns: HashMap<TxnId, TxnState>,
    stamp: u64,
    known_tables: HashSet<TableId>,
    incarnations: HashMap<(TableId, Key), u32>,
}

/// The multi-version engine.
pub struct MvccEngine {
    catalog: Catalog,
    recorder: Recorder,
    mode: MvccMode,
    inner: Mutex<Inner>,
}

impl MvccEngine {
    /// Creates an engine in the given mode.
    pub fn new(mode: MvccMode) -> MvccEngine {
        MvccEngine {
            catalog: Catalog::new(),
            recorder: Recorder::new(),
            mode,
            inner: Mutex::new(Inner {
                store: Store::new(),
                txns: HashMap::new(),
                stamp: 0,
                known_tables: HashSet::new(),
                incarnations: HashMap::new(),
            }),
        }
    }

    fn ensure_table(&self, inner: &mut Inner, table: TableId) {
        if inner.known_tables.insert(table) {
            self.recorder
                .register_table(table, &self.catalog.table_name(table));
        }
    }

    fn check_active(inner: &Inner, txn: TxnId) -> OpResult<()> {
        match inner.txns.get(&txn) {
            None => Err(EngineError::UnknownTxn),
            Some(s) => match s.status {
                TxnStatus::Active => Ok(()),
                TxnStatus::Aborted => Err(EngineError::Aborted(AbortReason::WriteConflict)),
                TxnStatus::Committed => Err(EngineError::UnknownTxn),
            },
        }
    }

    fn buffered(state: &TxnState, table: TableId, key: Key) -> Option<Option<Value>> {
        state
            .writes
            .iter()
            .rev()
            .find(|(t, k, _)| *t == table && *k == key)
            .map(|(_, _, v)| v.clone())
    }

    /// The read stamp of `txn`: its snapshot under SI, "now" under
    /// read committed.
    fn read_stamp(&self, inner: &Inner, txn: TxnId) -> u64 {
        match self.mode {
            MvccMode::SnapshotIsolation => inner.txns[&txn].snapshot,
            MvccMode::ReadCommitted => inner.stamp,
        }
    }
}

impl Engine for MvccEngine {
    fn name(&self) -> String {
        match self.mode {
            MvccMode::SnapshotIsolation => "MVCC-SI".to_string(),
            MvccMode::ReadCommitted => "MVCC-RC".to_string(),
        }
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn begin(&self) -> TxnId {
        // The Begin event must be recorded atomically with the
        // snapshot acquisition: if another transaction's commit slips
        // between the two, the history shows this transaction starting
        // *before* writes its snapshot actually includes, and the
        // checker rightly reports a PL-SI start-dependency violation
        // the engine never committed. Lock order (inner → recorder)
        // matches every other call site.
        let mut inner = self.inner.lock();
        let t = self.recorder.begin_txn();
        self.recorder.set_level(
            t,
            match self.mode {
                MvccMode::SnapshotIsolation => RequestedLevel::PL3,
                MvccMode::ReadCommitted => RequestedLevel::PL2,
            },
        );
        let snapshot = inner.stamp;
        inner.txns.insert(
            t,
            TxnState {
                status: TxnStatus::Active,
                snapshot,
                writes: Vec::new(),
            },
        );
        t
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        if let Some(v) = Self::buffered(&inner.txns[&txn], table, key) {
            return Ok(v);
        }
        let stamp = self.read_stamp(&inner, txn);
        // Visit every incarnation: the snapshot may predate the
        // current one.
        let mut selected = None;
        for &ix in inner.store.table_chains(table) {
            let chain = &inner.store.chains[ix];
            if chain.key != key {
                continue;
            }
            if let Some(v) = chain.version_at(stamp) {
                selected = Some((chain.object, v.version_id(), v.value.clone()));
            }
        }
        match selected {
            Some((obj, vid, Some(value))) => {
                self.recorder.read(txn, obj, vid);
                Ok(Some(value))
            }
            _ => Ok(None),
        }
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .writes
            .push((table, key, Some(value)));
        Ok(())
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .writes
            .push((table, key, None));
        Ok(())
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, pred.table);
        let table = pred.table;
        let stamp = self.read_stamp(&inner, txn);
        let mut vset = Vec::new();
        let mut matches = Vec::new();
        for &ix in inner.store.table_chains(table) {
            let chain = &inner.store.chains[ix];
            let Some(v) = chain.version_at(stamp) else {
                continue; // not visible in this snapshot: implicit unborn
            };
            vset.push((chain.object, v.version_id()));
            if let Some(value) = &v.value {
                if pred.matches(value) {
                    matches.push((chain.key, chain.object, v.version_id(), value.clone()));
                }
            }
        }
        // Overlay own buffered writes.
        let state = &inner.txns[&txn];
        let mut result: Vec<(Key, Value)> =
            matches.iter().map(|(k, _, _, v)| (*k, v.clone())).collect();
        for (t, k, v) in &state.writes {
            if *t != table {
                continue;
            }
            result.retain(|(rk, _)| rk != k);
            if let Some(val) = v {
                if pred.matches(val) {
                    result.push((*k, val.clone()));
                }
            }
        }
        self.recorder.predicate_read(txn, pred, vset);
        for (_, obj, vid, _) in &matches {
            self.recorder.read(txn, *obj, *vid);
        }
        Ok(result)
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;

        if self.mode == MvccMode::SnapshotIsolation {
            // First-committer-wins: abort if any written key gained a
            // committed version after our snapshot.
            let state = &inner.txns[&txn];
            let snapshot = state.snapshot;
            let conflict = state.writes.iter().any(|(table, key, _)| {
                inner.store.chain_index(*table, *key).is_some_and(|ix| {
                    inner.store.chains[ix]
                        .versions
                        .iter()
                        .any(|v| v.commit_stamp.is_some_and(|s| s > snapshot))
                })
            });
            if conflict {
                adya_obs::counter!("engine.mvcc.fcw_abort").inc();
                inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Aborted;
                self.recorder.abort(txn);
                return Err(EngineError::Aborted(AbortReason::WriteConflict));
            }
        }

        inner.stamp += 1;
        let stamp = inner.stamp;
        let writes = std::mem::take(&mut inner.txns.get_mut(&txn).expect("active").writes);
        for (table, key, value) in writes {
            let existing_ix = inner.store.chain_index(table, key);
            if value.is_none() {
                let exists = existing_ix
                    .and_then(|ix| inner.store.chains[ix].committed_tip())
                    .is_some_and(|v| !v.is_dead());
                if !exists {
                    continue;
                }
            }
            let needs_new = match existing_ix {
                None => true,
                Some(ix) => {
                    let chain = &inner.store.chains[ix];
                    chain.versions.is_empty()
                        || chain.tip().is_some_and(|v| v.is_dead())
                        || chain.own_latest(txn).is_some_and(|v| v.is_dead())
                }
            };
            let chain_ix = if needs_new {
                let inc = {
                    let e = inner.incarnations.entry((table, key)).or_insert(0);
                    let v = *e;
                    *e += 1;
                    v
                };
                let obj = self.recorder.register_object(table, key, inc);
                inner.store.new_incarnation(table, key, obj)
            } else {
                existing_ix.expect("checked")
            };
            let obj = inner.store.chains[chain_ix].object;
            let vid = match &value {
                Some(v) => self.recorder.write(txn, obj, v.clone()),
                None => self.recorder.delete(txn, obj),
            };
            inner.store.chains[chain_ix].push(txn, vid.seq, value);
            inner.store.chains[chain_ix].commit_writer(txn, stamp);
            adya_obs::histogram!("engine.mvcc.chain_len")
                .record(inner.store.chains[chain_ix].versions.len() as u64);
        }
        inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Committed;
        self.recorder.commit(txn);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        match inner.txns.get(&txn) {
            None => return Err(EngineError::UnknownTxn),
            Some(s) if s.status != TxnStatus::Active => return Ok(()),
            _ => {}
        }
        inner.txns.get_mut(&txn).expect("known").status = TxnStatus::Aborted;
        self.recorder.abort(txn);
        Ok(())
    }

    fn set_event_tap(&self, tap: crate::recorder::EventTap) {
        self.recorder.set_tap(tap);
    }

    fn set_seq_event_tap(&self, tap: crate::recorder::SeqEventTap) {
        self.recorder.set_seq_tap(tap);
    }

    fn finalize(&self) -> History {
        let inner = self.inner.lock();
        for chain in &inner.store.chains {
            self.recorder
                .set_version_order(chain.object, chain.committed_order());
        }
        self.recorder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: MvccMode) -> (MvccEngine, TableId) {
        let e = MvccEngine::new(mode);
        let t = e.catalog().table("acct");
        (e, t)
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        // T2 commits a new version after T1's snapshot.
        let t2 = e.begin();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        // T1 still sees the snapshot value.
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.commit(t1).unwrap();
    }

    #[test]
    fn first_committer_wins() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t1).unwrap();
        assert!(matches!(
            e.commit(t2),
            Err(EngineError::Aborted(AbortReason::WriteConflict))
        ));
    }

    #[test]
    fn write_skew_commits_under_si() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(5)).unwrap();
        e.write(t0, tbl, Key(2), Value::Int(5)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.read(t1, tbl, Key(1)).unwrap();
        e.read(t1, tbl, Key(2)).unwrap();
        e.read(t2, tbl, Key(1)).unwrap();
        e.read(t2, tbl, Key(2)).unwrap();
        e.write(t1, tbl, Key(1), Value::Int(0)).unwrap();
        e.write(t2, tbl, Key(2), Value::Int(0)).unwrap();
        e.commit(t1).unwrap();
        e.commit(t2).unwrap(); // disjoint write sets: both commit
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 3);
    }

    #[test]
    fn rc_mode_reads_latest_committed_each_time() {
        let (e, tbl) = setup(MvccMode::ReadCommitted);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        let t2 = e.begin();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        // Non-repeatable read: T1 sees the new value.
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(2)));
        e.commit(t1).unwrap();
    }

    #[test]
    fn snapshot_select_sees_consistent_predicate_state() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t2, tbl, Key(2), Value::Int(9)).unwrap();
        e.commit(t2).unwrap();
        // T1's snapshot predates T2: only one match.
        assert_eq!(e.select(t1, &p).unwrap().len(), 1);
        e.commit(t1).unwrap();
    }

    #[test]
    fn deletes_respect_snapshots() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        let t2 = e.begin();
        e.delete(t2, tbl, Key(1)).unwrap();
        e.commit(t2).unwrap();
        // T1's snapshot still sees the row.
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.commit(t1).unwrap();
        // A fresh transaction does not.
        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), None);
        e.commit(t3).unwrap();
    }

    #[test]
    fn si_history_records_begin_events() {
        let (e, tbl) = setup(MvccMode::SnapshotIsolation);
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        let h = e.finalize();
        assert!(h.txn(t1).unwrap().begin_event.is_some());
    }
}

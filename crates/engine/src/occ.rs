//! Kung–Robinson style optimistic concurrency control.
//!
//! Transactions read the committed state and buffer their writes;
//! commit runs backward validation — the read set (items *and*
//! predicates) is checked against the write sets of transactions that
//! committed after this one began. Validation failures abort; there is
//! no blocking anywhere, which is exactly the class of implementation
//! the preventative definitions exclude (§3) and the generalized ones
//! admit.

use std::collections::{HashMap, HashSet};

use adya_history::{History, RequestedLevel, TxnId, Value};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::recorder::Recorder;
use crate::store::Store;
use crate::types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

struct TxnState {
    status: TxnStatus,
    start_stamp: u64,
    /// Keys whose value (or absence) the transaction observed.
    read_keys: HashSet<(TableId, Key)>,
    /// Predicates the transaction evaluated.
    pred_reads: Vec<TablePred>,
    /// Buffered writes in program order (`None` value = delete).
    writes: Vec<(TableId, Key, Option<Value>)>,
}

/// One entry of the committed-transaction log used by backward
/// validation.
struct CommitLogEntry {
    stamp: u64,
    /// `(table, key, before image, after image)` per written row.
    writes: Vec<(TableId, Key, Option<Value>, Option<Value>)>,
}

struct Inner {
    store: Store,
    txns: HashMap<TxnId, TxnState>,
    stamp: u64,
    log: Vec<CommitLogEntry>,
    known_tables: HashSet<TableId>,
    incarnations: HashMap<(TableId, Key), u32>,
}

/// The optimistic engine.
pub struct OccEngine {
    catalog: Catalog,
    recorder: Recorder,
    inner: Mutex<Inner>,
}

impl Default for OccEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl OccEngine {
    /// Creates an empty optimistic engine.
    pub fn new() -> OccEngine {
        OccEngine {
            catalog: Catalog::new(),
            recorder: Recorder::new(),
            inner: Mutex::new(Inner {
                store: Store::new(),
                txns: HashMap::new(),
                stamp: 0,
                log: Vec::new(),
                known_tables: HashSet::new(),
                incarnations: HashMap::new(),
            }),
        }
    }

    fn ensure_table(&self, inner: &mut Inner, table: TableId) {
        if inner.known_tables.insert(table) {
            self.recorder
                .register_table(table, &self.catalog.table_name(table));
        }
    }

    fn check_active(inner: &Inner, txn: TxnId) -> OpResult<()> {
        match inner.txns.get(&txn) {
            None => Err(EngineError::UnknownTxn),
            Some(s) => match s.status {
                TxnStatus::Active => Ok(()),
                TxnStatus::Aborted => Err(EngineError::Aborted(AbortReason::ValidationFailed)),
                TxnStatus::Committed => Err(EngineError::UnknownTxn),
            },
        }
    }

    /// The buffered value `txn` would see for `(table, key)`, if it
    /// wrote it.
    fn buffered(state: &TxnState, table: TableId, key: Key) -> Option<Option<Value>> {
        state
            .writes
            .iter()
            .rev()
            .find(|(t, k, _)| *t == table && *k == key)
            .map(|(_, _, v)| v.clone())
    }

    fn do_abort(&self, inner: &mut Inner, txn: TxnId, _reason: AbortReason) {
        let state = inner.txns.get_mut(&txn).expect("known txn");
        state.status = TxnStatus::Aborted;
        self.recorder.abort(txn);
    }
}

impl Engine for OccEngine {
    fn name(&self) -> String {
        "OCC".to_string()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn begin(&self) -> TxnId {
        let t = self.recorder.begin_txn();
        self.recorder.set_level(t, RequestedLevel::PL3);
        let mut inner = self.inner.lock();
        let start_stamp = inner.stamp;
        inner.txns.insert(
            t,
            TxnState {
                status: TxnStatus::Active,
                start_stamp,
                read_keys: HashSet::new(),
                pred_reads: Vec::new(),
                writes: Vec::new(),
            },
        );
        t
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        // Own buffered write wins (no history event: the write itself
        // is only recorded at install time).
        if let Some(v) = Self::buffered(&inner.txns[&txn], table, key) {
            return Ok(v);
        }
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .read_keys
            .insert((table, key));
        let selected = inner.store.chain_index(table, key).and_then(|ix| {
            let chain = &inner.store.chains[ix];
            chain
                .committed_tip()
                .map(|v| (chain.object, v.version_id(), v.value.clone()))
        });
        match selected {
            Some((obj, vid, Some(value))) => {
                self.recorder.read(txn, obj, vid);
                Ok(Some(value))
            }
            _ => Ok(None),
        }
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .writes
            .push((table, key, Some(value)));
        Ok(())
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .writes
            .push((table, key, None));
        Ok(())
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, pred.table);
        let table = pred.table;

        let mut vset = Vec::new();
        let mut matches = Vec::new();
        for &ix in inner.store.table_chains(table) {
            let chain = &inner.store.chains[ix];
            let Some(v) = chain.committed_tip() else {
                continue;
            };
            vset.push((chain.object, v.version_id()));
            if let Some(value) = &v.value {
                if pred.matches(value) {
                    matches.push((chain.key, chain.object, v.version_id(), value.clone()));
                }
            }
        }
        // Overlay the transaction's own buffered writes on the result
        // (read-your-own-writes for predicate queries).
        let state = inner.txns.get_mut(&txn).expect("active");
        let mut result: Vec<(Key, Value)> =
            matches.iter().map(|(k, _, _, v)| (*k, v.clone())).collect();
        for (t, k, v) in &state.writes {
            if *t != table {
                continue;
            }
            result.retain(|(rk, _)| rk != k);
            if let Some(val) = v {
                if pred.matches(val) {
                    result.push((*k, val.clone()));
                }
            }
        }
        state.pred_reads.push(pred.clone());
        for (k, _, _, _) in &matches {
            state.read_keys.insert((table, *k));
        }
        self.recorder.predicate_read(txn, pred, vset);
        for (_, obj, vid, _) in &matches {
            self.recorder.read(txn, *obj, *vid);
        }
        Ok(result)
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;

        // Backward validation against transactions that committed
        // after we began.
        let state = &inner.txns[&txn];
        let start = state.start_stamp;
        let mut conflict = false;
        for entry in inner.log.iter().rev() {
            if entry.stamp <= start {
                break;
            }
            for (t, k, before, after) in &entry.writes {
                if state.read_keys.contains(&(*t, *k)) {
                    conflict = true;
                    break;
                }
                for p in &state.pred_reads {
                    if p.table == *t
                        && (before.as_ref().map(|v| p.matches(v)).unwrap_or(false)
                            || after.as_ref().map(|v| p.matches(v)).unwrap_or(false))
                    {
                        conflict = true;
                        break;
                    }
                }
                if conflict {
                    break;
                }
            }
            if conflict {
                break;
            }
        }
        if conflict {
            adya_obs::counter!("engine.occ.validation_failed").inc();
            adya_obs::global().event(
                "engine.occ.validation_failed",
                vec![("txn".into(), adya_obs::Field::from(u64::from(txn.0)))],
            );
            self.do_abort(&mut inner, txn, AbortReason::ValidationFailed);
            return Err(EngineError::Aborted(AbortReason::ValidationFailed));
        }

        // Install buffered writes.
        inner.stamp += 1;
        let stamp = inner.stamp;
        let writes = std::mem::take(&mut inner.txns.get_mut(&txn).expect("active").writes);
        let mut log_writes = Vec::with_capacity(writes.len());
        for (table, key, value) in writes {
            // Deleting an absent row is a no-op.
            let existing_ix = inner.store.chain_index(table, key);
            let before = existing_ix
                .and_then(|ix| inner.store.chains[ix].committed_tip())
                .and_then(|v| v.value.clone());
            if value.is_none() && before.is_none() {
                continue;
            }
            let needs_new = match existing_ix {
                None => true,
                Some(ix) => {
                    let chain = &inner.store.chains[ix];
                    chain.versions.is_empty()
                        || chain.tip().is_some_and(|v| v.is_dead())
                        || chain.own_latest(txn).is_some_and(|v| v.is_dead())
                }
            };
            let chain_ix = if needs_new {
                let inc = {
                    let e = inner.incarnations.entry((table, key)).or_insert(0);
                    let v = *e;
                    *e += 1;
                    v
                };
                let obj = self.recorder.register_object(table, key, inc);
                inner.store.new_incarnation(table, key, obj)
            } else {
                existing_ix.expect("checked")
            };
            let obj = inner.store.chains[chain_ix].object;
            let vid = match &value {
                Some(v) => self.recorder.write(txn, obj, v.clone()),
                None => self.recorder.delete(txn, obj),
            };
            inner.store.chains[chain_ix].push(txn, vid.seq, value.clone());
            inner.store.chains[chain_ix].commit_writer(txn, stamp);
            log_writes.push((table, key, before, value));
        }
        inner.log.push(CommitLogEntry {
            stamp,
            writes: log_writes,
        });
        inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Committed;
        self.recorder.commit(txn);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        match inner.txns.get(&txn) {
            None => return Err(EngineError::UnknownTxn),
            Some(s) if s.status != TxnStatus::Active => return Ok(()),
            _ => {}
        }
        self.do_abort(&mut inner, txn, AbortReason::Requested);
        Ok(())
    }

    fn set_event_tap(&self, tap: crate::recorder::EventTap) {
        self.recorder.set_tap(tap);
    }

    fn set_seq_event_tap(&self, tap: crate::recorder::SeqEventTap) {
        self.recorder.set_seq_tap(tap);
    }

    fn finalize(&self) -> History {
        let inner = self.inner.lock();
        for chain in &inner.store.chains {
            self.recorder
                .set_version_order(chain.object, chain.committed_order());
        }
        self.recorder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (OccEngine, TableId) {
        let e = OccEngine::new();
        let t = e.catalog().table("acct");
        (e, t)
    }

    #[test]
    fn reads_never_block() {
        let (e, tbl) = setup();
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(2)).unwrap();
        // T2 reads while T1's write is buffered: sees the committed
        // state, never blocks, and commits first without trouble.
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.commit(t2).unwrap();
        e.commit(t1).unwrap();
    }

    #[test]
    fn backward_validation_is_conservative_about_read_overlap() {
        // T2 read key 1 before T1 overwrote and committed it; classic
        // Kung–Robinson aborts T2 even though T2 could serialize
        // before T1.
        let (e, tbl) = setup();
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(2)).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        e.commit(t1).unwrap();
        assert!(matches!(
            e.commit(t2),
            Err(EngineError::Aborted(AbortReason::ValidationFailed))
        ));
    }

    #[test]
    fn validation_aborts_stale_reader_writer() {
        let (e, tbl) = setup();
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t0).unwrap();
        // T1 reads key 1; T2 overwrites it and commits first; T1 must
        // fail validation.
        let t1 = e.begin();
        e.read(t1, tbl, Key(1)).unwrap();
        e.write(t1, tbl, Key(2), Value::Int(10)).unwrap();
        let t2 = e.begin();
        e.write(t2, tbl, Key(1), Value::Int(7)).unwrap();
        e.commit(t2).unwrap();
        assert!(matches!(
            e.commit(t1),
            Err(EngineError::Aborted(AbortReason::ValidationFailed))
        ));
        // The failure is journaled with the victim's id, so metrics
        // snapshots (`--metrics --json`, perf_sweep reports) can show
        // *which* transactions lost validation, not just how many.
        let journaled = adya_obs::global().events().iter().any(|ev| {
            ev.name == "engine.occ.validation_failed"
                && ev
                    .fields
                    .iter()
                    .any(|(k, v)| k == "txn" && *v == adya_obs::Field::from(u64::from(t1.0)))
        });
        assert!(journaled, "validation failure missing from the journal");
    }

    #[test]
    fn blind_writes_do_not_conflict() {
        let (e, tbl) = setup();
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t1).unwrap();
        // T2 never read key 1, so backward validation passes (Thomas-
        // write-rule-like behaviour; the committed history stays
        // serializable because version order follows commit order).
        e.commit(t2).unwrap();
    }

    #[test]
    fn predicate_validation_catches_phantoms() {
        let (e, tbl) = setup();
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t1 = e.begin();
        assert!(e.select(t1, &p).unwrap().is_empty());
        // T2 inserts a matching row and commits.
        let t2 = e.begin();
        e.write(t2, tbl, Key(5), Value::Int(42)).unwrap();
        e.commit(t2).unwrap();
        // T1 writes something and tries to commit: phantom detected.
        e.write(t1, tbl, Key(9), Value::Int(-3)).unwrap();
        assert!(matches!(
            e.commit(t1),
            Err(EngineError::Aborted(AbortReason::ValidationFailed))
        ));
    }

    #[test]
    fn own_buffered_writes_visible() {
        let (e, tbl) = setup();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(5)));
        e.delete(t1, tbl, Key(1)).unwrap();
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), None);
        e.commit(t1).unwrap();
    }

    #[test]
    fn select_overlays_buffered_writes() {
        let (e, tbl) = setup();
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(3)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        e.write(t1, tbl, Key(2), Value::Int(4)).unwrap();
        e.delete(t1, tbl, Key(1)).unwrap();
        let rows = e.select(t1, &p).unwrap();
        assert_eq!(rows, vec![(Key(2), Value::Int(4))]);
        e.commit(t1).unwrap();
    }

    #[test]
    fn history_of_validated_run_is_recorded() {
        let (e, tbl) = setup();
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.read(t2, tbl, Key(1)).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 2);
    }
}

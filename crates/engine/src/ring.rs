//! Bounded lock-free SPSC rings of sequenced events — the first stage
//! of the parallel ingest pipeline.
//!
//! An [`EventRing`] carries `(seq, Event)` pairs from an event
//! producer (an engine's recorder tap) to the pipeline's sequencer
//! without taking any lock: one atomic head, one atomic tail, a fixed
//! slot array. The design is the single-producer/single-consumer
//! classic — the same atomic-index style as `adya_obs`'s `SpanRing`
//! seqlock, but move-based because events are owned, not `Copy`.
//!
//! **SPSC contract.** At most one thread pushes and at most one thread
//! pops at any instant. The push side in this repo is serialized by
//! the recorder mutex (taps run under it), and the pop side is the
//! single sequencer thread, so the contract holds by construction;
//! the handles are `!Clone` to keep it that way. Release stores on
//! the published index pair with acquire loads on the other side, so
//! a popped event's contents always happen-after its push.
//!
//! Backpressure: a full ring makes [`RingProducer::push`] spin-yield
//! until the consumer frees a slot (counted in
//! `pipeline.backpressure_waits`), which stalls the producing engine
//! thread — exactly the flow control a bounded pipeline wants.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use adya_history::Event;

/// One ring slot: an event paired with its rebased recorder sequence.
type Slot = UnsafeCell<MaybeUninit<(u64, Event)>>;

struct RingInner {
    /// Slot storage; slot `i % capacity` holds the item with logical
    /// index `i`. A slot is initialized iff `head <= i < tail`.
    slots: Box<[Slot]>,
    /// Logical index of the next item to pop (monotonic, not wrapped).
    head: AtomicUsize,
    /// Logical index of the next item to push (monotonic, not wrapped).
    tail: AtomicUsize,
    /// Producer is done; no further pushes will happen.
    closed: AtomicBool,
}

// SAFETY: the slots are only ever touched by the single producer
// (writing slot `tail` before publishing `tail + 1`) and the single
// consumer (reading slot `head` before publishing `head + 1`); the
// acquire/release index handoff makes those accesses data-race-free.
// The SPSC discipline itself is enforced by the `!Clone` handle split
// in `EventRing::with_capacity`.
unsafe impl Sync for RingInner {}
unsafe impl Send for RingInner {}

/// Factory for one SPSC ring; see the module docs.
pub struct EventRing;

impl EventRing {
    /// Creates a ring holding up to `capacity` events (minimum 1) and
    /// returns its two endpoint handles.
    pub fn with_capacity(capacity: usize) -> (RingProducer, RingConsumer) {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(RingInner {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        });
        (
            RingProducer {
                inner: Arc::clone(&inner),
            },
            RingConsumer { inner },
        )
    }
}

/// Push endpoint of one [`EventRing`]. Not cloneable: exactly one
/// producer may exist.
pub struct RingProducer {
    inner: Arc<RingInner>,
}

impl RingProducer {
    /// Attempts to push without blocking; hands the item back when the
    /// ring is full.
    pub fn try_push(&self, seq: u64, ev: Event) -> Result<(), (u64, Event)> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        if tail - head == self.inner.slots.len() {
            return Err((seq, ev));
        }
        let slot = &self.inner.slots[tail % self.inner.slots.len()];
        // SAFETY: `head <= tail < head + capacity` means this slot is
        // free (the consumer has moved out any previous occupant), and
        // only this producer writes slots at `tail`.
        unsafe { (*slot.get()).write((seq, ev)) };
        self.inner.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Pushes, spin-yielding under backpressure until the consumer
    /// frees a slot. Each wait round is counted in
    /// `pipeline.backpressure_waits`.
    pub fn push(&self, seq: u64, ev: Event) {
        let mut item = (seq, ev);
        loop {
            match self.try_push(item.0, item.1) {
                Ok(()) => return,
                Err(back) => {
                    item = back;
                    adya_obs::counter!("pipeline.backpressure_waits").inc();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Marks the stream complete. The consumer drains what remains and
    /// then sees [`RingConsumer::is_drained`].
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// A detached close-only handle for this ring, so a driver can end
    /// the stream while the producer endpoint lives on inside a tap
    /// closure it cannot reach.
    pub fn closer(&self) -> RingCloser {
        RingCloser {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for RingProducer {
    fn drop(&mut self) {
        self.close();
    }
}

/// Close-only handle to a ring (see [`RingProducer::closer`]). Safe to
/// clone and share: closing touches only the `closed` flag.
#[derive(Clone)]
pub struct RingCloser {
    inner: Arc<RingInner>,
}

impl RingCloser {
    /// Marks the stream complete, like [`RingProducer::close`].
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
    }
}

/// Pop endpoint of one [`EventRing`]. Not cloneable: exactly one
/// consumer may exist.
pub struct RingConsumer {
    inner: Arc<RingInner>,
}

impl RingConsumer {
    /// Pops the oldest event, or `None` when the ring is currently
    /// empty (which does not imply the stream is over — see
    /// [`is_drained`]).
    ///
    /// [`is_drained`]: RingConsumer::is_drained
    pub fn try_pop(&self) -> Option<(u64, Event)> {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.inner.slots[head % self.inner.slots.len()];
        // SAFETY: `head < tail` means this slot was initialized by the
        // producer and published by its release store on `tail`; only
        // this consumer reads slots at `head`, and advancing `head`
        // below transfers the slot back to the producer empty.
        let item = unsafe { (*slot.get()).assume_init_read() };
        self.inner.head.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        tail - head
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer closed the ring *and* every buffered
    /// event has been popped: the stream is complete.
    pub fn is_drained(&self) -> bool {
        // Closed must be read first: a racing producer could push then
        // close between the two loads, but never the reverse, so
        // "closed, then observed empty" is conclusive.
        self.inner.closed.load(Ordering::Acquire) && self.is_empty()
    }
}

impl Drop for RingConsumer {
    fn drop(&mut self) {
        // Move out any still-initialized slots so their events drop.
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::TxnId;

    fn ev(n: u32) -> Event {
        Event::Begin(TxnId(n))
    }

    #[test]
    fn fifo_order_and_capacity() {
        let (p, c) = EventRing::with_capacity(2);
        p.try_push(0, ev(0)).unwrap();
        p.try_push(1, ev(1)).unwrap();
        assert!(p.try_push(2, ev(2)).is_err(), "full ring rejects");
        assert_eq!(c.try_pop().unwrap().0, 0);
        p.try_push(2, ev(2)).unwrap();
        assert_eq!(c.try_pop().unwrap().0, 1);
        assert_eq!(c.try_pop().unwrap().0, 2);
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn drained_only_after_close_and_empty() {
        let (p, c) = EventRing::with_capacity(4);
        p.try_push(0, ev(0)).unwrap();
        assert!(!c.is_drained());
        p.close();
        assert!(!c.is_drained(), "still holds an event");
        assert_eq!(c.try_pop().unwrap().0, 0);
        assert!(c.is_drained());
    }

    #[test]
    fn dropping_producer_closes() {
        let (p, c) = EventRing::with_capacity(4);
        p.try_push(0, ev(0)).unwrap();
        drop(p);
        assert_eq!(c.try_pop().unwrap().0, 0);
        assert!(c.is_drained());
    }

    #[test]
    fn threaded_handoff_preserves_order() {
        // A small capacity forces wrap-around and backpressure many
        // times over; the consumer must still see 0..n in order.
        let (p, c) = EventRing::with_capacity(8);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                p.push(i, ev(i as u32));
            }
        });
        let mut next = 0u64;
        while next < n {
            if let Some((seq, e)) = c.try_pop() {
                assert_eq!(seq, next);
                assert_eq!(e, ev(next as u32));
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert!(c.is_drained());
    }
}

//! The common engine interface.

use adya_history::{History, TxnId, Value};

use crate::recorder::{EventTap, SeqEventTap};
use crate::types::{Catalog, Key, OpResult, TableId, TablePred};

/// A transactional engine over the shared store model.
///
/// All engines are thread-safe; operations may return
/// [`crate::EngineError::Blocked`] (retry the identical call later —
/// blocked operations have no side effects) or
/// [`crate::EngineError::Aborted`] (the transaction is gone; begin a
/// new one). Drivers that want deadlock detection build a wait-for
/// graph from the `holders` reported by `Blocked`.
pub trait Engine: Send + Sync {
    /// Scheme name for reports ("2PL-serializable", "OCC", …).
    fn name(&self) -> String;

    /// The table catalog. Tables are registered by name on first use.
    fn catalog(&self) -> &Catalog;

    /// Starts a transaction.
    fn begin(&self) -> TxnId;

    /// Reads the row `(table, key)`; `None` if the row does not exist
    /// under this engine's visibility rule.
    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>>;

    /// Writes (inserts or updates) the row.
    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()>;

    /// Deletes the row (no-op if absent).
    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()>;

    /// Predicate read: returns the matching `(key, value)` pairs and
    /// records a predicate read (plus item reads of the matches).
    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>>;

    /// Attempts to commit.
    fn commit(&self, txn: TxnId) -> OpResult<()>;

    /// Aborts the transaction (idempotent).
    fn abort(&self, txn: TxnId) -> OpResult<()>;

    /// Installs a streaming observer on the engine's recorder: every
    /// subsequently recorded event (begin, read, write, commit, abort,
    /// predicate read) is passed to `tap` in recorded order, enabling
    /// live checking with `adya-online` while the workload runs.
    fn set_event_tap(&self, tap: EventTap);

    /// Installs a sequence-carrying streaming observer (see
    /// [`SeqEventTap`]): like [`set_event_tap`], but each event comes
    /// with its recorder sequence number. The pipeline's buffering tap
    /// ([`crate::recorder::buffering_tap`]) installs through this to
    /// shard events across its rings by sequence. Independent of the
    /// plain tap; both may be installed at once.
    ///
    /// [`set_event_tap`]: Engine::set_event_tap
    fn set_seq_event_tap(&self, tap: SeqEventTap);

    /// Assembles the recorded history (completing still-active
    /// transactions with aborts). Call once, after the workload.
    fn finalize(&self) -> History;
}

/// Boxed engines forward the whole interface, so decorators written
/// over `E: Engine` (fault injection, instrumentation) compose with
/// dynamically chosen engines.
impl Engine for Box<dyn Engine> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn catalog(&self) -> &Catalog {
        (**self).catalog()
    }
    fn begin(&self) -> TxnId {
        (**self).begin()
    }
    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        (**self).read(txn, table, key)
    }
    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        (**self).write(txn, table, key, value)
    }
    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        (**self).delete(txn, table, key)
    }
    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        (**self).select(txn, pred)
    }
    fn commit(&self, txn: TxnId) -> OpResult<()> {
        (**self).commit(txn)
    }
    fn abort(&self, txn: TxnId) -> OpResult<()> {
        (**self).abort(txn)
    }
    fn set_event_tap(&self, tap: EventTap) {
        (**self).set_event_tap(tap)
    }
    fn set_seq_event_tap(&self, tap: SeqEventTap) {
        (**self).set_seq_event_tap(tap)
    }
    fn finalize(&self) -> History {
        (**self).finalize()
    }
}

//! Two-phase locking with the lock-scope configurations of Figure 1.

use std::collections::{HashMap, HashSet};

use adya_history::{History, RequestedLevel, TxnId, Value};
use parking_lot::Mutex;

use crate::engine::Engine;
use crate::lock::{LockMode, LockTable};
use crate::recorder::Recorder;
use crate::store::Store;
use crate::types::{AbortReason, Catalog, EngineError, Key, OpResult, TableId, TablePred};

/// How long a lock is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockDuration {
    /// No lock at all.
    None,
    /// Released at the end of the operation that took it.
    Short,
    /// Released at commit/abort.
    Long,
}

/// One row of Figure 1: the lock scopes of a locking isolation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// Display name.
    pub name: &'static str,
    /// Write (exclusive) lock duration — `Short` only for Degree 0.
    pub write: LockDuration,
    /// Data-item read lock duration.
    pub item_read: LockDuration,
    /// Predicate (phantom) read lock duration.
    pub pred_read: LockDuration,
    /// The level this configuration promises, recorded per
    /// transaction for mixed-history analysis.
    pub level: RequestedLevel,
}

impl LockConfig {
    /// Degree 0: short write locks only (proscribes nothing).
    pub fn degree0() -> LockConfig {
        LockConfig {
            name: "2PL-degree0",
            write: LockDuration::Short,
            item_read: LockDuration::None,
            pred_read: LockDuration::None,
            // Nominally recorded as PL-1, but Degree 0 proscribes
            // nothing (Figure 1): short write locks permit G0 cycles,
            // so Degree 0 transactions do not belong in a Definition 9
            // mix and no generalized level is claimed for them.
            level: RequestedLevel::PL1,
        }
    }

    /// Degree 1 = Locking READ UNCOMMITTED: long write locks.
    pub fn read_uncommitted() -> LockConfig {
        LockConfig {
            name: "2PL-read-uncommitted",
            write: LockDuration::Long,
            item_read: LockDuration::None,
            pred_read: LockDuration::None,
            level: RequestedLevel::PL1,
        }
    }

    /// Degree 2 = Locking READ COMMITTED: long write, short read
    /// locks.
    pub fn read_committed() -> LockConfig {
        LockConfig {
            name: "2PL-read-committed",
            write: LockDuration::Long,
            item_read: LockDuration::Short,
            pred_read: LockDuration::Short,
            level: RequestedLevel::PL2,
        }
    }

    /// Locking REPEATABLE READ: long write and item read locks, short
    /// phantom locks.
    pub fn repeatable_read() -> LockConfig {
        LockConfig {
            name: "2PL-repeatable-read",
            write: LockDuration::Long,
            item_read: LockDuration::Long,
            pred_read: LockDuration::Short,
            level: RequestedLevel::PL299,
        }
    }

    /// Degree 3 = Locking SERIALIZABLE: long everything.
    pub fn serializable() -> LockConfig {
        LockConfig {
            name: "2PL-serializable",
            write: LockDuration::Long,
            item_read: LockDuration::Long,
            pred_read: LockDuration::Long,
            level: RequestedLevel::PL3,
        }
    }

    /// All five rows of Figure 1, weakest first.
    pub fn all() -> Vec<LockConfig> {
        vec![
            LockConfig::degree0(),
            LockConfig::read_uncommitted(),
            LockConfig::read_committed(),
            LockConfig::repeatable_read(),
            LockConfig::serializable(),
        ]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

struct TxnState {
    status: TxnStatus,
    config: LockConfig,
    written_chains: HashSet<usize>,
    /// The key the transaction's cursor is positioned on, protected by
    /// a cursor (shared) lock until the cursor moves or the key is
    /// written (Cursor Stability).
    cursor: Option<(TableId, Key)>,
}

struct Inner {
    store: Store,
    locks: LockTable,
    txns: HashMap<TxnId, TxnState>,
    stamp: u64,
    known_tables: HashSet<TableId>,
    incarnations: HashMap<(TableId, Key), u32>,
}

/// A strict-two-phase-locking engine whose lock scopes follow one row
/// of Figure 1. In-place updates: uncommitted versions sit at the tip
/// of the chain, so configurations without read locks genuinely
/// perform dirty reads — exactly the behaviour the corresponding
/// degree permits.
///
/// Lock conflicts are reported as [`EngineError::Blocked`] with the
/// holders; the engine never waits internally, so drivers implement
/// waiting and deadlock victims.
pub struct LockingEngine {
    catalog: Catalog,
    recorder: Recorder,
    config: LockConfig,
    inner: Mutex<Inner>,
}

impl LockingEngine {
    /// Creates an engine with the given Figure 1 lock configuration.
    pub fn new(config: LockConfig) -> LockingEngine {
        LockingEngine {
            catalog: Catalog::new(),
            recorder: Recorder::new(),
            config,
            inner: Mutex::new(Inner {
                store: Store::new(),
                locks: LockTable::new(),
                txns: HashMap::new(),
                stamp: 0,
                known_tables: HashSet::new(),
                incarnations: HashMap::new(),
            }),
        }
    }

    /// Starts a transaction at a *different* Figure 1 row than the
    /// engine default — the mixed-level systems of §5.5.
    pub fn begin_with(&self, config: LockConfig) -> TxnId {
        let t = self.recorder.begin_txn();
        self.recorder.set_level(t, config.level);
        self.inner.lock().txns.insert(
            t,
            TxnState {
                status: TxnStatus::Active,
                config,
                written_chains: HashSet::new(),
                cursor: None,
            },
        );
        t
    }

    /// Positions a cursor on `(table, key)` and reads through it:
    /// acquires a shared lock that is *held while the cursor stays
    /// put* — released when the cursor moves to another row, upgraded
    /// when the transaction writes the row. This is the
    /// read-modify-write protection Cursor Stability adds over READ
    /// COMMITTED (the PL-CS level of the checker); plain reads keep
    /// their configured short/long durations.
    pub fn cursor_read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        if let Err(holders) = inner.locks.try_item(txn, table, key, LockMode::Shared) {
            return Err(EngineError::Blocked { holders });
        }
        // Cursor moved: drop the previous position's cursor lock —
        // unless the row was written (the X claim persists) or the
        // configuration takes *long* item read locks, in which case a
        // plain read may share the same S claim and releasing it would
        // silently revoke repeatable-read protection.
        let config = inner.txns[&txn].config;
        let prev = inner
            .txns
            .get_mut(&txn)
            .expect("active")
            .cursor
            .replace((table, key));
        if let Some((pt, pk)) = prev {
            if (pt, pk) != (table, key) && config.item_read != LockDuration::Long {
                inner.locks.release_shared(txn, pt, pk);
            }
        }
        let out = inner.store.chain_index(table, key).and_then(|ix| {
            Self::selected(&inner, txn, ix, false)
                .filter(|v| !v.is_dead())
                .map(|v| {
                    (
                        inner.store.chains[ix].object,
                        v.version_id(),
                        v.value.clone(),
                    )
                })
        });
        match out {
            Some((obj, vid, Some(value))) => {
                self.recorder.cursor_read(txn, obj, vid);
                Ok(Some(value))
            }
            _ => Ok(None),
        }
    }

    fn ensure_table(&self, inner: &mut Inner, table: TableId) {
        if inner.known_tables.insert(table) {
            self.recorder
                .register_table(table, &self.catalog.table_name(table));
        }
    }

    fn check_active(inner: &Inner, txn: TxnId) -> OpResult<()> {
        match inner.txns.get(&txn) {
            None => Err(EngineError::UnknownTxn),
            Some(s) => match s.status {
                TxnStatus::Active => Ok(()),
                TxnStatus::Aborted => Err(EngineError::Aborted(AbortReason::Requested)),
                TxnStatus::Committed => Err(EngineError::UnknownTxn),
            },
        }
    }

    /// The version a read by `txn` selects on a chain: its own latest
    /// write if any, else the tip (dirty) or committed tip depending
    /// on whether the configuration takes read locks.
    fn selected(
        inner: &Inner,
        txn: TxnId,
        chain_ix: usize,
        dirty_ok: bool,
    ) -> Option<&crate::store::StoredVersion> {
        let chain = &inner.store.chains[chain_ix];
        if let Some(own) = chain.own_latest(txn) {
            return Some(own);
        }
        if dirty_ok {
            chain.tip()
        } else {
            chain.committed_tip()
        }
    }

    /// Precision-lock check for a writer: other transactions' predicate
    /// locks on `table` that the before- or after-image satisfies.
    fn pred_conflicts(
        inner: &Inner,
        txn: TxnId,
        table: TableId,
        before: Option<&Value>,
        after: Option<&Value>,
    ) -> Vec<TxnId> {
        let mut out = Vec::new();
        for pl in inner.locks.pred_locks_of_others(txn, table) {
            let hit = before.map(|v| pl.pred.matches(v)).unwrap_or(false)
                || after.map(|v| pl.pred.matches(v)).unwrap_or(false);
            if hit {
                out.push(pl.txn);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Common write/delete path. `value: None` deletes.
    fn do_write(&self, txn: TxnId, table: TableId, key: Key, value: Option<Value>) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let config = inner.txns[&txn].config;

        // X lock (always at least short).
        if let Err(holders) = inner.locks.try_item(txn, table, key, LockMode::Exclusive) {
            return Err(EngineError::Blocked { holders });
        }
        // Precision predicate-lock check (before/after images).
        let before = inner
            .store
            .chain_index(table, key)
            .and_then(|ix| Self::selected(&inner, txn, ix, true))
            .and_then(|v| v.value.clone());
        let holders = Self::pred_conflicts(&inner, txn, table, before.as_ref(), value.as_ref());
        if !holders.is_empty() {
            if config.write == LockDuration::Short {
                inner.locks.release_exclusive(txn, table, key);
            }
            return Err(EngineError::Blocked { holders });
        }

        // Deleting an absent row is a no-op.
        let existing_ix = inner.store.chain_index(table, key);
        if value.is_none() {
            let visible = existing_ix
                .and_then(|ix| Self::selected(&inner, txn, ix, true))
                .is_some_and(|v| !v.is_dead());
            if !visible {
                if config.write == LockDuration::Short {
                    inner.locks.release_exclusive(txn, table, key);
                }
                return Ok(());
            }
        }

        // Resolve the chain, starting a fresh incarnation after any
        // dead tip (deleted-then-reinserted keys are new objects).
        let needs_new = match existing_ix {
            None => true,
            Some(ix) => {
                let chain = &inner.store.chains[ix];
                let tip_dead = chain.tip().is_some_and(|v| v.is_dead());
                let own_dead = chain.own_latest(txn).is_some_and(|v| v.is_dead());
                chain.versions.is_empty() || tip_dead || own_dead
            }
        };
        let chain_ix = if needs_new {
            let inc = {
                let e = inner.incarnations.entry((table, key)).or_insert(0);
                let v = *e;
                *e += 1;
                v
            };
            let obj = self.recorder.register_object(table, key, inc);
            inner.store.new_incarnation(table, key, obj)
        } else {
            existing_ix.expect("checked above")
        };

        let obj = inner.store.chains[chain_ix].object;
        let vid = match &value {
            Some(v) => self.recorder.write(txn, obj, v.clone()),
            None => self.recorder.delete(txn, obj),
        };
        inner.store.chains[chain_ix].push(txn, vid.seq, value);
        inner
            .txns
            .get_mut(&txn)
            .expect("active txn")
            .written_chains
            .insert(chain_ix);

        if config.write == LockDuration::Short {
            inner.locks.release_exclusive(txn, table, key);
        }
        Ok(())
    }
}

impl Engine for LockingEngine {
    fn name(&self) -> String {
        self.config.name.to_string()
    }

    fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn begin(&self) -> TxnId {
        self.begin_with(self.config)
    }

    fn read(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<Option<Value>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, table);
        let config = inner.txns[&txn].config;

        let take_lock = config.item_read != LockDuration::None;
        if take_lock {
            if let Err(holders) = inner.locks.try_item(txn, table, key, LockMode::Shared) {
                return Err(EngineError::Blocked { holders });
            }
        }
        let result = inner.store.chain_index(table, key).and_then(|ix| {
            let dirty_ok = config.item_read == LockDuration::None;
            Self::selected(&inner, txn, ix, dirty_ok).map(|v| (ix, v.version_id(), v.value.clone()))
        });
        let out = match result {
            Some((chain_ix, vid, Some(value))) => {
                let obj = inner.store.chains[chain_ix].object;
                self.recorder.read(txn, obj, vid);
                Some(value)
            }
            _ => None, // absent or dead: nothing to read
        };
        if config.item_read == LockDuration::Short {
            inner.locks.release_shared(txn, table, key);
        }
        Ok(out)
    }

    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> OpResult<()> {
        self.do_write(txn, table, key, Some(value))
    }

    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> OpResult<()> {
        self.do_write(txn, table, key, None)
    }

    fn select(&self, txn: TxnId, pred: &TablePred) -> OpResult<Vec<(Key, Value)>> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        self.ensure_table(&mut inner, pred.table);
        let config = inner.txns[&txn].config;
        let table = pred.table;

        // Phantom lock: conflicts with concurrent writers whose
        // before- or after-image matches the predicate.
        if config.pred_read != LockDuration::None {
            let mut holders = Vec::new();
            for &ix in inner.store.table_chains(table) {
                let chain = &inner.store.chains[ix];
                let Some(holder) = inner.locks.exclusive_holder(txn, table, chain.key) else {
                    continue;
                };
                let after = chain.tip().and_then(|v| v.value.as_ref());
                let before = chain.committed_tip().and_then(|v| v.value.as_ref());
                if after.map(|v| pred.matches(v)).unwrap_or(false)
                    || before.map(|v| pred.matches(v)).unwrap_or(false)
                {
                    holders.push(holder);
                }
            }
            if !holders.is_empty() {
                holders.sort_unstable();
                holders.dedup();
                return Err(EngineError::Blocked { holders });
            }
        }

        // Scan: select a version of every row incarnation; collect
        // matches. Acquire item read locks on matches first (all or
        // nothing, so a Blocked return has no side effects).
        let dirty_ok = config.item_read == LockDuration::None;
        let mut vset = Vec::new();
        let mut matches = Vec::new();
        for &ix in inner.store.table_chains(table) {
            let chain = &inner.store.chains[ix];
            let Some(v) = Self::selected(&inner, txn, ix, dirty_ok) else {
                continue; // empty chain: implicit unborn selection
            };
            vset.push((chain.object, v.version_id()));
            if let Some(value) = &v.value {
                if pred.matches(value) {
                    matches.push((ix, chain.key, chain.object, v.version_id(), value.clone()));
                }
            }
        }
        if config.item_read != LockDuration::None {
            let mut acquired = Vec::new();
            let mut blocked: Option<Vec<TxnId>> = None;
            for &(_, key, _, _, _) in &matches {
                if inner.locks.holds_any(txn, table, key) {
                    continue; // already protected by a prior claim
                }
                match inner.locks.try_item(txn, table, key, LockMode::Shared) {
                    Ok(()) => acquired.push(key),
                    Err(holders) => {
                        blocked = Some(holders);
                        break;
                    }
                }
            }
            if let Some(holders) = blocked {
                for key in acquired {
                    inner.locks.release_shared(txn, table, key);
                }
                return Err(EngineError::Blocked { holders });
            }
        }

        // Record the predicate read and the item reads of matches.
        self.recorder.predicate_read(txn, pred, vset);
        for &(_, _, obj, vid, _) in &matches {
            self.recorder.read(txn, obj, vid);
        }
        // Long pred lock persists; short is released at op end; the
        // item read locks follow their own configured duration.
        if config.pred_read == LockDuration::Long {
            inner.locks.add_pred(txn, pred.clone());
        }
        if config.item_read == LockDuration::Short {
            for &(_, key, _, _, _) in &matches {
                inner.locks.release_shared(txn, table, key);
            }
        }
        Ok(matches
            .into_iter()
            .map(|(_, key, _, _, value)| (key, value))
            .collect())
    }

    fn commit(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        Self::check_active(&inner, txn)?;
        inner.stamp += 1;
        let stamp = inner.stamp;
        let written: Vec<usize> = inner.txns[&txn].written_chains.iter().copied().collect();
        for ix in written {
            inner.store.chains[ix].commit_writer(txn, stamp);
        }
        inner.txns.get_mut(&txn).expect("active").status = TxnStatus::Committed;
        inner.locks.release_all(txn);
        self.recorder.commit(txn);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> OpResult<()> {
        let mut inner = self.inner.lock();
        match inner.txns.get(&txn) {
            None => return Err(EngineError::UnknownTxn),
            Some(s) if s.status != TxnStatus::Active => return Ok(()),
            _ => {}
        }
        let written: Vec<usize> = inner.txns[&txn].written_chains.iter().copied().collect();
        for ix in written {
            inner.store.chains[ix].remove_writer(txn);
            // An incarnation that ends up empty is retired so the next
            // writer starts a fresh object.
            if inner.store.chains[ix].versions.is_empty() {
                let (table, key) = {
                    let c = &inner.store.chains[ix];
                    (c.table, c.key)
                };
                inner.store.retire_if_current(table, key, ix);
            }
        }
        inner.txns.get_mut(&txn).expect("known").status = TxnStatus::Aborted;
        inner.locks.release_all(txn);
        self.recorder.abort(txn);
        Ok(())
    }

    fn set_event_tap(&self, tap: crate::recorder::EventTap) {
        self.recorder.set_tap(tap);
    }

    fn set_seq_event_tap(&self, tap: crate::recorder::SeqEventTap) {
        self.recorder.set_seq_tap(tap);
    }

    fn finalize(&self) -> History {
        let inner = self.inner.lock();
        for chain in &inner.store.chains {
            self.recorder
                .set_version_order(chain.object, chain.committed_order());
        }
        self.recorder.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(config: LockConfig) -> (LockingEngine, TableId) {
        let e = LockingEngine::new(config);
        let t = e.catalog().table("acct");
        (e, t)
    }

    #[test]
    fn read_your_own_writes() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        assert_eq!(e.read(t1, tbl, Key(1)).unwrap(), Some(Value::Int(5)));
        e.commit(t1).unwrap();
    }

    #[test]
    fn serializable_blocks_conflicting_write() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        let t2 = e.begin();
        let err = e.write(t2, tbl, Key(1), Value::Int(9)).unwrap_err();
        assert!(matches!(err, EngineError::Blocked { ref holders } if holders == &[t1]));
        e.commit(t1).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(9)).unwrap();
        e.commit(t2).unwrap();
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 2);
    }

    #[test]
    fn serializable_blocks_read_of_uncommitted() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        let t2 = e.begin();
        assert!(matches!(
            e.read(t2, tbl, Key(1)),
            Err(EngineError::Blocked { .. })
        ));
    }

    #[test]
    fn read_uncommitted_sees_dirty_data() {
        let (e, tbl) = setup(LockConfig::read_uncommitted());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        let t2 = e.begin();
        // No read locks: T2 reads T1's uncommitted tip.
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(5)));
        e.commit(t1).unwrap();
        e.commit(t2).unwrap();
    }

    #[test]
    fn degree0_allows_overlapping_writes() {
        let (e, tbl) = setup(LockConfig::degree0());
        let t1 = e.begin();
        let t2 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        // Short X lock released: T2 may write too (P0!).
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t1).unwrap();
        e.commit(t2).unwrap();
    }

    #[test]
    fn abort_restores_pre_state() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.write(t2, tbl, Key(1), Value::Int(99)).unwrap();
        e.abort(t2).unwrap();
        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), Some(Value::Int(5)));
        e.commit(t3).unwrap();
    }

    #[test]
    fn delete_then_reinsert_is_new_object() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(5)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.delete(t2, tbl, Key(1)).unwrap();
        e.commit(t2).unwrap();
        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), None);
        e.write(t3, tbl, Key(1), Value::Int(7)).unwrap();
        e.commit(t3).unwrap();
        let h = e.finalize();
        // Two distinct objects for key 1.
        assert_eq!(h.objects().count(), 2);
    }

    #[test]
    fn select_with_predicate_lock_blocks_phantom_insert() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(100)).unwrap();
        e.commit(t0).unwrap();
        let p = TablePred::new("pos", tbl, |v| matches!(v, Value::Int(i) if *i > 0));
        let t1 = e.begin();
        let rows = e.select(t1, &p).unwrap();
        assert_eq!(rows.len(), 1);
        // T2's insert of a matching row is blocked by T1's pred lock.
        let t2 = e.begin();
        assert!(matches!(
            e.write(t2, tbl, Key(2), Value::Int(50)),
            Err(EngineError::Blocked { .. })
        ));
        // But a non-matching insert sails through (precision locks).
        e.write(t2, tbl, Key(3), Value::Int(-1)).unwrap();
        e.commit(t1).unwrap();
        e.commit(t2).unwrap();
    }

    #[test]
    fn finalized_history_is_valid_and_has_version_orders() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        let h = e.finalize();
        let obj = h.object_by_name("table0#1").unwrap();
        assert_eq!(h.version_order(obj).len(), 3); // init + two versions
    }

    #[test]
    fn aborted_insert_retires_incarnation() {
        let (e, tbl) = setup(LockConfig::serializable());
        let t1 = e.begin();
        e.write(t1, tbl, Key(9), Value::Int(1)).unwrap();
        e.abort(t1).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(9)).unwrap(), None);
        e.write(t2, tbl, Key(9), Value::Int(2)).unwrap();
        e.commit(t2).unwrap();
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 1);
    }
}

#[cfg(test)]
mod cursor_tests {
    use super::*;
    use adya_core::{classify, IsolationLevel};

    /// Two read-modify-write increments through cursors: the cursor
    /// lock serializes them, no update is lost, and the history
    /// passes PL-CS (indeed PL-3 — with only two txns the protection
    /// is total).
    #[test]
    fn cursor_reads_prevent_lost_updates() {
        let e = LockingEngine::new(LockConfig::read_committed());
        let tbl = e.catalog().table("counter");
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();

        let t1 = e.begin();
        let t2 = e.begin();
        let v1 = e.cursor_read(t1, tbl, Key(1)).unwrap().unwrap();
        // T2's cursor read coexists (S locks)…
        let _v2 = e.cursor_read(t2, tbl, Key(1)).unwrap().unwrap();
        // …but T1's write must wait for T2's cursor to move or end:
        assert!(matches!(
            e.write(t1, tbl, Key(1), Value::Int(v1.as_int().unwrap() + 1)),
            Err(EngineError::Blocked { .. })
        ));
        // T2 moves its cursor away; T1 can now upgrade and write.
        let _ = e.cursor_read(t2, tbl, Key(2)).unwrap();
        e.write(t1, tbl, Key(1), Value::Int(v1.as_int().unwrap() + 1))
            .unwrap();
        e.commit(t1).unwrap();
        // T2 re-reads through the cursor and increments: sees T1's 1.
        let v2 = e.cursor_read(t2, tbl, Key(1)).unwrap().unwrap();
        e.write(t2, tbl, Key(1), Value::Int(v2.as_int().unwrap() + 1))
            .unwrap();
        e.commit(t2).unwrap();

        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), Some(Value::Int(2)));
        e.commit(t3).unwrap();
        let h = e.finalize();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PLCS), "{r}");
    }

    /// The same increments through *plain* READ COMMITTED reads lose
    /// an update; the history still satisfies PL-2 (and trivially
    /// PL-CS, which only guards cursor accesses) but not PL-3.
    #[test]
    fn plain_rc_reads_lose_updates() {
        let e = LockingEngine::new(LockConfig::read_committed());
        let tbl = e.catalog().table("counter");
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();

        let t1 = e.begin();
        let t2 = e.begin();
        let v1 = e.read(t1, tbl, Key(1)).unwrap().unwrap();
        let v2 = e.read(t2, tbl, Key(1)).unwrap().unwrap();
        e.write(t1, tbl, Key(1), Value::Int(v1.as_int().unwrap() + 1))
            .unwrap();
        e.commit(t1).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(v2.as_int().unwrap() + 1))
            .unwrap();
        e.commit(t2).unwrap();

        let t3 = e.begin();
        // Lost update: 1, not 2.
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.commit(t3).unwrap();
        let h = e.finalize();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL2));
        assert!(!r.satisfies(IsolationLevel::PL3));
    }

    /// Regression: under REPEATABLE READ (long item read locks), a
    /// cursor move must not release the shared claim a prior plain
    /// read established.
    #[test]
    fn cursor_move_preserves_long_read_locks() {
        let e = LockingEngine::new(LockConfig::repeatable_read());
        let tbl = e.catalog().table("t");
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(1)).unwrap();
        e.write(t0, tbl, Key(2), Value::Int(2)).unwrap();
        e.commit(t0).unwrap();
        let t1 = e.begin();
        e.read(t1, tbl, Key(1)).unwrap(); // long S
        e.cursor_read(t1, tbl, Key(1)).unwrap(); // same row
        e.cursor_read(t1, tbl, Key(2)).unwrap(); // cursor moves away
                                                 // Key 1 must still be read-locked against writers.
        let t2 = e.begin();
        assert!(matches!(
            e.write(t2, tbl, Key(1), Value::Int(9)),
            Err(EngineError::Blocked { .. })
        ));
        e.commit(t1).unwrap();
        e.write(t2, tbl, Key(1), Value::Int(9)).unwrap();
        e.commit(t2).unwrap();
        use adya_core::IsolationLevel;
        let h = e.finalize();
        assert!(adya_core::classify(&h).satisfies(IsolationLevel::PL299));
    }

    /// Writing the cursor row upgrades the cursor lock in place; a
    /// subsequent cursor move must not release the X claim.
    #[test]
    fn write_through_cursor_keeps_exclusive_claim() {
        let e = LockingEngine::new(LockConfig::read_committed());
        let tbl = e.catalog().table("counter");
        let t0 = e.begin();
        e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
        e.write(t0, tbl, Key(2), Value::Int(0)).unwrap();
        e.commit(t0).unwrap();

        let t1 = e.begin();
        e.cursor_read(t1, tbl, Key(1)).unwrap();
        e.write(t1, tbl, Key(1), Value::Int(9)).unwrap();
        // Cursor moves on; the X lock on key 1 must persist.
        e.cursor_read(t1, tbl, Key(2)).unwrap();
        let t2 = e.begin();
        assert!(matches!(
            e.read(t2, tbl, Key(1)),
            Err(EngineError::Blocked { .. })
        ));
        e.commit(t1).unwrap();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(9)));
        e.commit(t2).unwrap();
    }
}

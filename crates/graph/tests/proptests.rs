//! Property tests: Tarjan SCC and constrained cycle search validated
//! against a naive O(V·E) reachability oracle on random graphs, plus
//! batched-vs-per-edge equivalence for the incremental DAG.

use adya_graph::{DiGraph, IncrementalDag};
use proptest::prelude::*;

/// A random edge list over `n` nodes with boolean labels.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, bool)>)> {
    (1usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, any::<bool>()), 0..30);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize, bool)]) -> DiGraph<usize, bool> {
    let mut g = DiGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for &(a, b, l) in edges {
        g.add_edge(a, b, l);
    }
    g
}

/// Naive reachability over a filtered edge set.
fn reach(n: usize, edges: &[(usize, usize, bool)], ok: impl Fn(bool) -> bool) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for &(a, b, l) in edges {
        if ok(l) {
            r[a][b] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Two nodes share a Tarjan SCC iff they reach each other.
    #[test]
    fn sccs_match_mutual_reachability((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        let r = reach(n, &edges, |_| true);
        let comps = g.sccs();
        let mut comp_of = vec![usize::MAX; n];
        for (ci, comp) in comps.iter().enumerate() {
            for &ix in comp {
                comp_of[*g.node(ix)] = ci;
            }
        }
        for i in 0..n {
            for j in 0..n {
                let same = comp_of[i] == comp_of[j];
                let mutual = i == j || (r[i][j] && r[j][i]);
                prop_assert_eq!(same, mutual, "nodes {} and {}", i, j);
            }
        }
    }

    /// find_cycle agrees with the oracle: a cycle over allowed edges
    /// containing a required edge exists iff some required edge (u,v)
    /// has v ⇝ u over allowed edges (or u == v).
    #[test]
    fn find_cycle_matches_oracle((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        let r = reach(n, &edges, |l| l);
        let oracle = edges
            .iter()
            .any(|&(a, b, l)| l && (a == b || r[b][a]));
        let found = g.find_cycle(|&l| l, |&l| l);
        prop_assert_eq!(found.is_some(), oracle);
        if let Some(c) = found {
            // Witness is closed and uses only allowed edges.
            let es = c.edges();
            for (i, e) in es.iter().enumerate() {
                prop_assert!(e.label);
                prop_assert_eq!(&e.to, &es[(i + 1) % es.len()].from);
            }
        }
    }

    /// find_cycle_exactly_one: exists iff some special edge (u,v) has
    /// v ⇝ u over non-special path edges (or u == v).
    #[test]
    fn exactly_one_matches_oracle((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        // special = true-labelled, path = false-labelled.
        let r = reach(n, &edges, |l| !l);
        let oracle = edges
            .iter()
            .any(|&(a, b, l)| l && (a == b || r[b][a]));
        let found = g.find_cycle_exactly_one(|&l| l, |_| true);
        prop_assert_eq!(found.is_some(), oracle);
        if let Some(c) = found {
            prop_assert_eq!(c.count_labels(|&l| l), 1, "exactly one special edge");
        }
    }

    /// Batched `insert_edges` is state-identical to per-edge
    /// `add_edge`: identical `Insert` results (topological-order
    /// verdicts *and* cycle reports with witness paths) and an equal
    /// exact-state image, for any edge stream and any batch split.
    #[test]
    fn insert_edges_equals_per_edge(
        (n, edges) in graph_strategy(),
        splits in proptest::collection::vec(0usize..8, 0..40),
    ) {
        let stream: Vec<(usize, usize, bool)> = edges;
        let mut per_edge: IncrementalDag<usize, bool> = IncrementalDag::new();
        for i in 0..n {
            per_edge.add_node(i);
        }
        let seq: Vec<_> = stream
            .iter()
            .map(|&(a, b, l)| per_edge.add_edge(a, b, l))
            .collect();
        let mut batched: IncrementalDag<usize, bool> = IncrementalDag::new();
        for i in 0..n {
            batched.add_node(i);
        }
        let mut got = Vec::new();
        let mut i = 0usize;
        let mut s = 0usize;
        while i < stream.len() {
            let n = splits.get(s).copied().unwrap_or(usize::MAX).min(stream.len() - i);
            s += 1;
            got.extend(batched.insert_edges(&stream[i..i + n]));
            i += n;
        }
        prop_assert_eq!(seq, got, "Insert results diverged");
        prop_assert_eq!(per_edge.to_parts(), batched.to_parts(), "exact state diverged");
    }

    /// topo_order is a valid topological order exactly when acyclic.
    #[test]
    fn topo_order_valid((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        match g.topo_order() {
            None => prop_assert!(!g.is_acyclic()),
            Some(order) => {
                prop_assert!(g.is_acyclic());
                let pos: std::collections::HashMap<usize, usize> = order
                    .iter()
                    .enumerate()
                    .map(|(i, &ix)| (*g.node(ix), i))
                    .collect();
                // Acyclic graphs have no self-loops; every edge points
                // forward in the order.
                for &(a, b, _) in &edges {
                    prop_assert!(a != b);
                    prop_assert!(pos[&a] < pos[&b]);
                }
            }
        }
    }
}

//! Property tests: Tarjan SCC and constrained cycle search validated
//! against a naive O(V·E) reachability oracle on random graphs.

use adya_graph::DiGraph;
use proptest::prelude::*;

/// A random edge list over `n` nodes with boolean labels.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, bool)>)> {
    (1usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, any::<bool>()), 0..30);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize, bool)]) -> DiGraph<usize, bool> {
    let mut g = DiGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for &(a, b, l) in edges {
        g.add_edge(a, b, l);
    }
    g
}

/// Naive reachability over a filtered edge set.
fn reach(n: usize, edges: &[(usize, usize, bool)], ok: impl Fn(bool) -> bool) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for &(a, b, l) in edges {
        if ok(l) {
            r[a][b] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Two nodes share a Tarjan SCC iff they reach each other.
    #[test]
    fn sccs_match_mutual_reachability((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        let r = reach(n, &edges, |_| true);
        let comps = g.sccs();
        let mut comp_of = vec![usize::MAX; n];
        for (ci, comp) in comps.iter().enumerate() {
            for &ix in comp {
                comp_of[*g.node(ix)] = ci;
            }
        }
        for i in 0..n {
            for j in 0..n {
                let same = comp_of[i] == comp_of[j];
                let mutual = i == j || (r[i][j] && r[j][i]);
                prop_assert_eq!(same, mutual, "nodes {} and {}", i, j);
            }
        }
    }

    /// find_cycle agrees with the oracle: a cycle over allowed edges
    /// containing a required edge exists iff some required edge (u,v)
    /// has v ⇝ u over allowed edges (or u == v).
    #[test]
    fn find_cycle_matches_oracle((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        let r = reach(n, &edges, |l| l);
        let oracle = edges
            .iter()
            .any(|&(a, b, l)| l && (a == b || r[b][a]));
        let found = g.find_cycle(|&l| l, |&l| l);
        prop_assert_eq!(found.is_some(), oracle);
        if let Some(c) = found {
            // Witness is closed and uses only allowed edges.
            let es = c.edges();
            for (i, e) in es.iter().enumerate() {
                prop_assert!(e.label);
                prop_assert_eq!(&e.to, &es[(i + 1) % es.len()].from);
            }
        }
    }

    /// find_cycle_exactly_one: exists iff some special edge (u,v) has
    /// v ⇝ u over non-special path edges (or u == v).
    #[test]
    fn exactly_one_matches_oracle((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        // special = true-labelled, path = false-labelled.
        let r = reach(n, &edges, |l| !l);
        let oracle = edges
            .iter()
            .any(|&(a, b, l)| l && (a == b || r[b][a]));
        let found = g.find_cycle_exactly_one(|&l| l, |_| true);
        prop_assert_eq!(found.is_some(), oracle);
        if let Some(c) = found {
            prop_assert_eq!(c.count_labels(|&l| l), 1, "exactly one special edge");
        }
    }

    /// topo_order is a valid topological order exactly when acyclic.
    #[test]
    fn topo_order_valid((n, edges) in graph_strategy()) {
        let g = build(n, &edges);
        match g.topo_order() {
            None => prop_assert!(!g.is_acyclic()),
            Some(order) => {
                prop_assert!(g.is_acyclic());
                let pos: std::collections::HashMap<usize, usize> = order
                    .iter()
                    .enumerate()
                    .map(|(i, &ix)| (*g.node(ix), i))
                    .collect();
                // Acyclic graphs have no self-loops; every edge points
                // forward in the order.
                for &(a, b, _) in &edges {
                    prop_assert!(a != b);
                    prop_assert!(pos[&a] < pos[&b]);
                }
            }
        }
    }
}

//! The labelled multi-digraph underlying all serialization graphs.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Dense index of a node inside a [`DiGraph`].
///
/// Indices are assigned in insertion order and are stable for the
/// lifetime of the graph (nodes are never removed; serialization graphs
/// only ever grow while a history is being analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub(crate) u32);

impl NodeIdx {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A borrowed view of one edge: `from --label--> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'g, N, E> {
    /// Node the edge leaves.
    pub from: &'g N,
    /// Node the edge enters.
    pub to: &'g N,
    /// Edge label (e.g. a dependency kind).
    pub label: &'g E,
}

#[derive(Debug, Clone)]
pub(crate) struct RawEdge<E> {
    pub(crate) to: NodeIdx,
    pub(crate) label: E,
}

/// A directed multigraph with labelled edges over node keys of type `N`.
///
/// Parallel edges with distinct labels are preserved: a pair of
/// transactions may be related by a write-dependency *and* an
/// anti-dependency at once, and cycle classification must see both.
///
/// ```
/// use adya_graph::DiGraph;
///
/// let mut g: DiGraph<&str, &str> = DiGraph::new();
/// g.add_edge("T1", "T2", "ww");
/// g.add_edge("T2", "T1", "rw");
/// let cycle = g.find_cycle(|_| true, |_| true).expect("cyclic");
/// assert_eq!(cycle.len(), 2);
/// ```
#[derive(Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    index: HashMap<N, NodeIdx>,
    /// Outgoing adjacency per node, parallel to `nodes`.
    pub(crate) out: Vec<Vec<RawEdge<E>>>,
    edge_count: usize,
}

impl<N, E> Default for DiGraph<N, E>
where
    N: Eq + Hash + Clone,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E>
where
    N: Eq + Hash + Clone,
{
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            out: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            index: HashMap::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts `node` if absent and returns its index.
    pub fn add_node(&mut self, node: N) -> NodeIdx {
        if let Some(&ix) = self.index.get(&node) {
            return ix;
        }
        let ix = NodeIdx(u32::try_from(self.nodes.len()).expect("graph too large"));
        self.index.insert(node.clone(), ix);
        self.nodes.push(node);
        self.out.push(Vec::new());
        ix
    }

    /// Adds an edge `from --label--> to`, inserting endpoints as needed.
    ///
    /// Duplicate `(from, to, label)` triples are collapsed when `E: Eq`
    /// via [`DiGraph::add_edge_dedup`]; this method always appends.
    pub fn add_edge(&mut self, from: N, to: N, label: E) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        self.out[f.index()].push(RawEdge { to: t, label });
        self.edge_count += 1;
    }

    /// Index of `node`, if present.
    pub fn node_idx(&self, node: &N) -> Option<NodeIdx> {
        self.index.get(node).copied()
    }

    /// Node key at `ix`.
    pub fn node(&self, ix: NodeIdx) -> &N {
        &self.nodes[ix.index()]
    }

    /// True if `node` is in the graph.
    pub fn contains_node(&self, node: &N) -> bool {
        self.index.contains_key(node)
    }

    /// Iterates over all node keys in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, N, E>> {
        self.out.iter().enumerate().flat_map(move |(f, adj)| {
            adj.iter().map(move |e| EdgeRef {
                from: &self.nodes[f],
                to: &self.nodes[e.to.index()],
                label: &e.label,
            })
        })
    }

    /// Iterates over the outgoing edges of `node` (empty if absent).
    pub fn edges_from<'g>(&'g self, node: &N) -> impl Iterator<Item = EdgeRef<'g, N, E>> {
        let (from, adj): (Option<&'g N>, &'g [RawEdge<E>]) = match self.index.get(node) {
            Some(&ix) => (Some(&self.nodes[ix.index()]), &self.out[ix.index()]),
            None => (None, &[]),
        };
        adj.iter().map(move |e| EdgeRef {
            from: from.expect("non-empty adjacency implies node present"),
            to: &self.nodes[e.to.index()],
            label: &e.label,
        })
    }

    /// True if some edge `from -> to` exists whose label satisfies `pred`.
    pub fn has_edge_where(&self, from: &N, to: &N, mut pred: impl FnMut(&E) -> bool) -> bool {
        let (Some(&f), Some(&t)) = (self.index.get(from), self.index.get(to)) else {
            return false;
        };
        self.out[f.index()]
            .iter()
            .any(|e| e.to == t && pred(&e.label))
    }
}

impl<N, E> DiGraph<N, E>
where
    N: Eq + Hash + Clone,
    E: Eq,
{
    /// Adds an edge unless an identical `(from, to, label)` edge exists.
    ///
    /// Serialization graphs call this to keep witness cycles free of
    /// redundant duplicates (e.g. two reads of the same version create
    /// only one read-dependency edge).
    pub fn add_edge_dedup(&mut self, from: N, to: N, label: E) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        if self.out[f.index()]
            .iter()
            .any(|e| e.to == t && e.label == label)
        {
            return;
        }
        self.out[f.index()].push(RawEdge { to: t, label });
        self.edge_count += 1;
    }
}

impl<N, E> fmt::Debug for DiGraph<N, E>
where
    N: Eq + Hash + Clone + fmt::Debug,
    E: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("DiGraph");
        s.field("nodes", &self.nodes);
        let edges: Vec<String> = self
            .edges()
            .map(|e| format!("{:?} -[{:?}]-> {:?}", e.from, e.label, e.to))
            .collect();
        s.field("edges", &edges);
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_is_idempotent() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("a");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn add_edge_creates_endpoints() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.contains_node(&"a"));
        assert!(g.contains_node(&"b"));
    }

    #[test]
    fn parallel_edges_are_kept() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 1);
        g.add_edge("a", "b", 2);
        g.add_edge("a", "b", 1);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn dedup_collapses_identical_edges() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge_dedup("a", "b", 1);
        g.add_edge_dedup("a", "b", 1);
        g.add_edge_dedup("a", "b", 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edges_from_missing_node_is_empty() {
        let g: DiGraph<&str, u8> = DiGraph::new();
        assert_eq!(g.edges_from(&"nope").count(), 0);
    }

    #[test]
    fn has_edge_where_matches_label() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 3);
        assert!(g.has_edge_where(&"a", &"b", |&l| l == 3));
        assert!(!g.has_edge_where(&"a", &"b", |&l| l == 4));
        assert!(!g.has_edge_where(&"b", &"a", |_| true));
    }

    #[test]
    fn edge_iteration_reports_all() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 1);
        g.add_edge("b", "c", 2);
        g.add_edge("c", "a", 3);
        let labels: Vec<u8> = g.edges().map(|e| *e.label).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&1) && labels.contains(&2) && labels.contains(&3));
    }
}

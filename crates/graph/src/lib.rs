//! Generic directed-graph utilities for serialization graphs.
//!
//! The paper "Generalized Isolation Level Definitions" (Adya, Liskov,
//! O'Neil — ICDE 2000) defines every isolation level by proscribing a
//! class of cycles in a serialization graph: cycles of only
//! write-dependencies (G0), cycles of only dependencies (G1c), cycles
//! containing an anti-dependency (G2), and so on. This crate provides the
//! one graph implementation shared by the Direct Serialization Graph
//! (DSG), the Mixed Serialization Graph (MSG), the Start-ordered
//! Serialization Graph (SSG, for Snapshot Isolation) and the lock
//! manager's wait-for graph:
//!
//! * a labelled multi-digraph [`DiGraph`] over arbitrary node keys,
//! * Tarjan strongly-connected components ([`DiGraph::sccs`]),
//! * constrained cycle search returning concrete witness cycles
//!   ([`DiGraph::find_cycle`], [`DiGraph::find_cycle_exactly_one`]),
//! * Graphviz DOT export ([`DiGraph::to_dot`]).
//!
//! Cycle searches never return a bare boolean: they return a [`Cycle`]
//! listing the exact edges, so a checker can explain *why* a history was
//! rejected.
//!
//! For the *online* checker there is additionally [`IncrementalDag`]:
//! Pearce–Kelly incremental topological ordering with cycle
//! condensation and reachability-preserving node removal, so a
//! streaming checker can detect new cycles edge-by-edge and
//! garbage-collect settled transactions.

#![warn(missing_docs)]

mod cycle;
mod digraph;
mod dot;
mod incremental;
mod scc;

pub use cycle::{Cycle, CycleEdge};
pub use digraph::{DiGraph, EdgeRef, NodeIdx};
pub use dot::DotOptions;
pub use incremental::{DagParts, EdgeParts, IncrementalDag, Insert, SccInfo, SlotParts};

//! Constrained cycle search with concrete witnesses.
//!
//! The phenomena of the paper are all of the form "the serialization
//! graph contains a directed cycle whose edges are drawn from set A and
//! at least one of which is drawn from set R" (G0: A = {ww}, R = any;
//! G1c: A = {ww, wr}; G2: A = all, R = {rw}) — or, for the extension
//! phenomena G-single / G-SIb of Adya's thesis, "a cycle with *exactly
//! one* edge from set S". Both shapes are provided here, and both return
//! the witnessing cycle rather than a boolean.

use std::collections::VecDeque;
use std::fmt;
use std::hash::Hash;

use crate::digraph::{DiGraph, NodeIdx};

/// One edge of a witness cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEdge<N, E> {
    /// Source node.
    pub from: N,
    /// Target node.
    pub to: N,
    /// Edge label.
    pub label: E,
}

/// A directed cycle: a non-empty edge sequence where each edge's `to`
/// equals the next edge's `from`, and the last edge returns to the
/// first edge's `from`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle<N, E> {
    edges: Vec<CycleEdge<N, E>>,
}

impl<N, E> Cycle<N, E> {
    /// Number of edges (equal to the number of distinct nodes for a
    /// simple cycle; a self-loop has length 1).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Cycles are never empty, so this is always `false`; provided for
    /// clippy-idiomatic pairing with [`Cycle::len`].
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges in traversal order.
    pub fn edges(&self) -> &[CycleEdge<N, E>] {
        &self.edges
    }

    /// The nodes in traversal order (each exactly once).
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.edges.iter().map(|e| &e.from)
    }

    /// Count of edges whose label satisfies `pred`.
    pub fn count_labels(&self, mut pred: impl FnMut(&E) -> bool) -> usize {
        self.edges.iter().filter(|e| pred(&e.label)).count()
    }

    /// True if any edge label satisfies `pred`.
    pub fn any_label(&self, pred: impl FnMut(&E) -> bool) -> bool {
        self.count_labels(pred) > 0
    }
}

impl<N: fmt::Display, E: fmt::Display> fmt::Display for Cycle<N, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{} -[{}]->", e.from, e.label)?;
        }
        if let Some(first) = self.edges.first() {
            write!(f, " {}", first.from)?;
        }
        Ok(())
    }
}

impl<N, E> DiGraph<N, E>
where
    N: Eq + Hash + Clone,
    E: Clone,
{
    /// Finds a cycle all of whose edges satisfy `allowed` and at least
    /// one of whose edges also satisfies `required`.
    ///
    /// Returns `None` if no such cycle exists. The returned cycle is a
    /// shortest cycle through one qualifying edge (BFS back-path), which
    /// keeps witnesses readable.
    pub fn find_cycle(
        &self,
        mut allowed: impl FnMut(&E) -> bool,
        mut required: impl FnMut(&E) -> bool,
    ) -> Option<Cycle<N, E>> {
        // Component id per node over the allowed subgraph.
        let comps = self.sccs_filtered(&mut allowed);
        let mut comp_of = vec![usize::MAX; self.node_count()];
        for (ci, comp) in comps.iter().enumerate() {
            for &n in comp {
                comp_of[n.index()] = ci;
            }
        }
        // A qualifying cycle exists iff some allowed+required edge has
        // both endpoints in one SCC of the allowed subgraph (self-loops
        // included: from == to trivially shares a component).
        for (f, adj) in self.out.iter().enumerate() {
            for e in adj {
                if !allowed(&e.label) || !required(&e.label) {
                    continue;
                }
                if comp_of[f] == comp_of[e.to.index()] {
                    let from = NodeIdx(f as u32);
                    return Some(self.close_cycle(from, e.to, e.label.clone(), &mut allowed));
                }
            }
        }
        None
    }

    /// Finds a cycle with *exactly one* edge satisfying `special`; every
    /// other edge must satisfy `path_ok` (and not `special`).
    ///
    /// This is the shape of G-single (PL-2+) and G-SIb (Snapshot
    /// Isolation): a cycle with exactly one anti-dependency edge whose
    /// remaining edges are dependency (and start-dependency) edges.
    pub fn find_cycle_exactly_one(
        &self,
        mut special: impl FnMut(&E) -> bool,
        mut path_ok: impl FnMut(&E) -> bool,
    ) -> Option<Cycle<N, E>> {
        for (f, adj) in self.out.iter().enumerate() {
            for e in adj {
                if !special(&e.label) {
                    continue;
                }
                let from = NodeIdx(f as u32);
                // Path from e.to back to `from` using only non-special
                // path edges closes a cycle with exactly one special
                // edge. (A special self-loop qualifies via the empty
                // path.)
                let mut ok = |l: &E| path_ok(l) && !special(l);
                if let Some(path) = self.bfs_path(e.to, from, &mut ok) {
                    let mut edges = Vec::with_capacity(path.len() + 1);
                    edges.push(CycleEdge {
                        from: self.node(from).clone(),
                        to: self.node(e.to).clone(),
                        label: e.label.clone(),
                    });
                    edges.extend(path);
                    return Some(Cycle { edges });
                }
            }
        }
        None
    }

    /// Closes a cycle around the known in-component edge
    /// `from --label--> to` by finding the shortest allowed path
    /// `to ⇝ from`.
    fn close_cycle(
        &self,
        from: NodeIdx,
        to: NodeIdx,
        label: E,
        allowed: &mut impl FnMut(&E) -> bool,
    ) -> Cycle<N, E> {
        let path = if from == to {
            Vec::new()
        } else {
            self.bfs_path(to, from, allowed)
                .expect("endpoints share an SCC, a path must exist")
        };
        let mut edges = Vec::with_capacity(path.len() + 1);
        edges.push(CycleEdge {
            from: self.node(from).clone(),
            to: self.node(to).clone(),
            label,
        });
        edges.extend(path);
        Cycle { edges }
    }

    /// Shortest path `src ⇝ dst` over edges satisfying `edge_ok`, as
    /// cycle edges. `Some(vec![])` when `src == dst`.
    fn bfs_path(
        &self,
        src: NodeIdx,
        dst: NodeIdx,
        edge_ok: &mut impl FnMut(&E) -> bool,
    ) -> Option<Vec<CycleEdge<N, E>>> {
        if src == dst {
            return Some(Vec::new());
        }
        // parent[n] = (prev node, edge index in prev's adjacency)
        let mut parent: Vec<Option<(NodeIdx, usize)>> = vec![None; self.node_count()];
        let mut queue = VecDeque::new();
        queue.push_back(src);
        let mut found = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for (ei, e) in self.out[v.index()].iter().enumerate() {
                if !edge_ok(&e.label) {
                    continue;
                }
                let w = e.to;
                if w != src && parent[w.index()].is_none() {
                    parent[w.index()] = Some((v, ei));
                    if w == dst {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(w);
                }
            }
        }
        if !found {
            return None;
        }
        // Reconstruct dst ← … ← src.
        let mut rev = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (prev, ei) = parent[cur.index()].expect("on reconstructed path");
            let e = &self.out[prev.index()][ei];
            rev.push(CycleEdge {
                from: self.node(prev).clone(),
                to: self.node(cur).clone(),
                label: e.label.clone(),
            });
            cur = prev;
        }
        rev.reverse();
        Some(rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_closed<N: Eq + Clone + std::fmt::Debug, E>(c: &Cycle<N, E>) {
        let es = c.edges();
        assert!(!es.is_empty());
        for i in 0..es.len() {
            let next = (i + 1) % es.len();
            assert_eq!(es[i].to, es[next].from, "cycle must be closed");
        }
    }

    #[test]
    fn finds_simple_cycle() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "ww");
        g.add_edge("b", "a", "ww");
        let c = g.find_cycle(|_| true, |_| true).expect("cycle");
        assert_closed(&c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "ww");
        g.add_edge("b", "c", "wr");
        assert!(g.find_cycle(|_| true, |_| true).is_none());
    }

    #[test]
    fn required_label_must_be_present() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "ww");
        g.add_edge("b", "a", "ww");
        assert!(g.find_cycle(|_| true, |&l| l == "rw").is_none());
        g.add_edge("b", "a", "rw");
        let c = g.find_cycle(|_| true, |&l| l == "rw").expect("rw cycle");
        assert_closed(&c);
        assert!(c.any_label(|&l| l == "rw"));
    }

    #[test]
    fn allowed_restricts_cycle_edges() {
        // Cycle only via an rw edge; searching with allowed = ww only
        // must fail.
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "ww");
        g.add_edge("b", "a", "rw");
        assert!(g.find_cycle(|&l| l == "ww", |_| true).is_none());
        assert!(g.find_cycle(|_| true, |_| true).is_some());
    }

    #[test]
    fn self_loop_is_a_cycle_of_length_one() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "a", "ww");
        let c = g.find_cycle(|_| true, |_| true).expect("self-loop");
        assert_eq!(c.len(), 1);
        assert_closed(&c);
    }

    #[test]
    fn exactly_one_special_edge() {
        // a -ww-> b -rw-> c -ww-> a : cycle has exactly one rw.
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "ww");
        g.add_edge("b", "c", "rw");
        g.add_edge("c", "a", "ww");
        let c = g
            .find_cycle_exactly_one(|&l| l == "rw", |_| true)
            .expect("single-rw cycle");
        assert_closed(&c);
        assert_eq!(c.count_labels(|&l| l == "rw"), 1);
    }

    #[test]
    fn exactly_one_rejects_two_special_cycles() {
        // Only cycle requires two rw edges: a -rw-> b -rw-> a.
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "rw");
        g.add_edge("b", "a", "rw");
        assert!(g.find_cycle_exactly_one(|&l| l == "rw", |_| true).is_none());
        // But the general search (>=1 rw) finds it.
        assert!(g.find_cycle(|_| true, |&l| l == "rw").is_some());
    }

    #[test]
    fn witness_is_shortest_through_required_edge() {
        // Two ways back from b to a: direct ww, or via c and d. BFS must
        // pick the direct one, giving a 2-cycle.
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("a", "b", "rw");
        g.add_edge("b", "a", "ww");
        g.add_edge("b", "c", "ww");
        g.add_edge("c", "d", "ww");
        g.add_edge("d", "a", "ww");
        let c = g.find_cycle(|_| true, |&l| l == "rw").expect("cycle");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_formats_cycle() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("T1", "T2", "ww");
        g.add_edge("T2", "T1", "rw");
        let c = g.find_cycle(|_| true, |_| true).expect("cycle");
        let s = c.to_string();
        assert!(s.contains("T1") && s.contains("T2"));
        assert!(s.contains("-[ww]->") || s.contains("-[rw]->"));
    }
}

//! Incremental directed-graph maintenance for online checking.
//!
//! [`IncrementalDag`] keeps a topological order over a growing labelled
//! digraph using the Pearce–Kelly algorithm: inserting an edge that
//! already respects the order is O(1); an order violation triggers a
//! bounded double DFS that either re-orders the affected region or
//! proves a cycle. Cycles are *condensed* — the strongly connected
//! component is merged into one representative via union-find — so the
//! structure stays a DAG of components and later insertions keep
//! working. Nodes whose component is still a singleton can be removed
//! again, which is what lets an online checker garbage-collect
//! transactions that can no longer participate in a new cycle.
//!
//! The batch [`DiGraph`](crate::DiGraph) is deliberately append-only;
//! this type exists for the streaming checker, where both incremental
//! cycle detection and node removal are required.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// One recorded edge, kept with its *original* endpoints so witnesses
/// can name real nodes even after components merge.
#[derive(Debug, Clone, Copy)]
struct Edge<K, L> {
    /// Slot of the other endpoint at insertion time (resolved through
    /// union-find on traversal).
    slot: usize,
    /// Original source key.
    src: K,
    /// Original destination key.
    dst: K,
    /// Edge label.
    label: L,
}

#[derive(Debug)]
struct Slot<K, L> {
    /// Union-find parent (self when representative).
    parent: usize,
    /// False once freed for reuse.
    live: bool,
    /// Representative-only: topological order value.
    ord: u64,
    /// Representative-only: number of original nodes condensed here.
    members: u32,
    /// Representative-only: outgoing edges of the whole component.
    out: Vec<Edge<K, L>>,
    /// Representative-only: incoming edges of the whole component.
    inc: Vec<Edge<K, L>>,
}

/// Result of [`IncrementalDag::add_edge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insert<K, L> {
    /// The edge respects the current order.
    Added,
    /// The exact `(from, to, label)` edge was already present (or was
    /// a self-loop); nothing changed. Lets callers skip per-edge
    /// bookkeeping — e.g. provenance recording — on the hot path.
    Duplicate,
    /// The edge violated the order; the affected region was re-ordered
    /// (Pearce–Kelly) and the graph is still acyclic.
    Reordered,
    /// Both endpoints already belong to the same condensed component:
    /// the edge lies on a cycle.
    IntraComponent,
    /// The edge closed a new cycle; the component was condensed.
    CycleFormed(SccInfo<K, L>),
}

/// Witness information for a freshly condensed component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccInfo<K, L> {
    /// A concrete cycle as `(src, dst, label)` edges: the inserted
    /// edge first, then a path from its head back to its tail.
    pub witness: Vec<(K, K, L)>,
    /// Every edge now internal to the merged component (including the
    /// inserted one) — the material for classifying the cycle.
    pub intra_edges: Vec<(K, K, L)>,
}

/// One edge of a [`DagParts`] snapshot: `(endpoint slot, src, dst,
/// label)`, mirroring the internal adjacency representation. Edge
/// *order* within a list is significant — traversals walk lists in
/// order, so restoring edges out of order would change later witness
/// paths.
pub type EdgeParts<K, L> = (usize, K, K, L);

/// The exact internal state of one slot, flattened for
/// [`IncrementalDag::to_parts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotParts<K, L> {
    /// Union-find parent (self when representative).
    pub parent: usize,
    /// False once freed for reuse.
    pub live: bool,
    /// Topological order value (representative-only).
    pub ord: u64,
    /// Condensed member count (representative-only).
    pub members: u32,
    /// Outgoing edges, in recorded order.
    pub out: Vec<EdgeParts<K, L>>,
    /// Incoming edges, in recorded order.
    pub inc: Vec<EdgeParts<K, L>>,
}

/// A flattened, plain-data image of an [`IncrementalDag`]'s *exact*
/// state — slot table, union-find structure, free list, dedup set and
/// counters — produced by [`IncrementalDag::to_parts`] and consumed by
/// [`IncrementalDag::from_parts`].
///
/// The round trip is exact: a restored graph answers every future
/// operation identically to the original, which is what lets the
/// online checker snapshot mid-stream and resume after a crash with a
/// byte-identical verdict stream. Hash-map-backed fields (`index`,
/// `seen`) are emitted in sorted order so two snapshots of equal
/// states are structurally equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagParts<K, L> {
    /// Slot table, including freed slots (indices are significant).
    pub slots: Vec<SlotParts<K, L>>,
    /// Key → slot mapping, sorted by key.
    pub index: Vec<(K, usize)>,
    /// Free slot list, in pop order (last entry pops first).
    pub free: Vec<usize>,
    /// Distinct recorded edges, sorted.
    pub seen: Vec<(K, K, L)>,
    /// Next topological order value to hand out.
    pub next_ord: u64,
    /// Pearce–Kelly re-ordering count.
    pub reorders: u64,
    /// Component condensation count.
    pub merges: u64,
}

/// Reusable traversal buffers for the Pearce–Kelly DFS passes. Held by
/// the graph (and shared across a whole [`IncrementalDag::insert_edges`]
/// batch) so the hot insert path allocates nothing once the buffers have
/// grown to the working-set size. Pure scratch: every field is cleared
/// before use, so it carries no state between inserts and is excluded
/// from [`DagParts`] snapshots.
#[derive(Debug)]
struct Scratch<K, L> {
    /// DFS worklist (shared by the forward and backward passes).
    stack: Vec<usize>,
    /// Forward-reachable components (discovery order).
    fwd: Vec<usize>,
    /// Forward-reachable components (membership test).
    fwd_set: HashSet<usize>,
    /// DFS tree edge into each forward-discovered component.
    parent_edge: HashMap<usize, Edge<K, L>>,
    /// Backward-reachable components (discovery order).
    back: Vec<usize>,
    /// Backward-reachable components (membership test).
    back_set: HashSet<usize>,
    /// Order values being redistributed.
    pool: Vec<u64>,
    /// Per-node adjacency copy for the visit loop (edges are `Copy`, so
    /// refilling this is a memcpy, not a clone of fresh allocations).
    edges: Vec<Edge<K, L>>,
}

// Manual impl: the derived one would demand `K: Default + L: Default`
// bounds the buffers do not actually need.
impl<K, L> Default for Scratch<K, L> {
    fn default() -> Self {
        Scratch {
            stack: Vec::new(),
            fwd: Vec::new(),
            fwd_set: HashSet::new(),
            parent_edge: HashMap::new(),
            back: Vec::new(),
            back_set: HashSet::new(),
            pool: Vec::new(),
            edges: Vec::new(),
        }
    }
}

impl<K, L> Scratch<K, L> {
    fn reset(&mut self) {
        self.stack.clear();
        self.fwd.clear();
        self.fwd_set.clear();
        self.parent_edge.clear();
        self.back.clear();
        self.back_set.clear();
        self.pool.clear();
        self.edges.clear();
    }
}

/// A labelled digraph maintaining a topological order incrementally,
/// condensing cycles, and supporting removal of singleton nodes.
#[derive(Debug, Default)]
pub struct IncrementalDag<K, L> {
    slots: Vec<Slot<K, L>>,
    index: HashMap<K, usize>,
    free: Vec<usize>,
    seen: HashSet<(K, K, L)>,
    next_ord: u64,
    reorders: u64,
    merges: u64,
    scratch: Scratch<K, L>,
}

impl<K, L> IncrementalDag<K, L>
where
    K: Copy + Eq + Hash,
    L: Copy + Eq + Hash,
{
    /// Creates an empty graph.
    pub fn new() -> Self {
        IncrementalDag {
            slots: Vec::new(),
            index: HashMap::new(),
            free: Vec::new(),
            seen: HashSet::new(),
            next_ord: 0,
            reorders: 0,
            merges: 0,
            scratch: Scratch::default(),
        }
    }

    /// Number of live original nodes.
    pub fn node_count(&self) -> usize {
        self.index.len()
    }

    /// Number of distinct recorded edges.
    pub fn edge_count(&self) -> usize {
        self.seen.len()
    }

    /// How many Pearce–Kelly re-orderings have run.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// How many component condensations have run.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// True if `k` is present.
    pub fn contains(&self, k: K) -> bool {
        self.index.contains_key(&k)
    }

    /// Adds `k` as an isolated node (idempotent); returns its slot.
    pub fn add_node(&mut self, k: K) -> usize {
        if let Some(&s) = self.index.get(&k) {
            return s;
        }
        let ord = self.next_ord;
        self.next_ord += 1;
        let slot = Slot {
            parent: 0,
            live: true,
            ord,
            members: 1,
            out: Vec::new(),
            inc: Vec::new(),
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s] = slot;
                s
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.slots[s].parent = s;
        self.index.insert(k, s);
        s
    }

    fn find(&mut self, mut s: usize) -> usize {
        while self.slots[s].parent != s {
            let p = self.slots[s].parent;
            self.slots[s].parent = self.slots[p].parent;
            s = self.slots[s].parent;
        }
        s
    }

    /// True when `k` is absent or still a singleton component, i.e.
    /// removable without disturbing a condensed cycle.
    pub fn is_removable(&mut self, k: K) -> bool {
        match self.index.get(&k).copied() {
            None => true,
            Some(s) => self.find(s) == s && self.slots[s].members == 1,
        }
    }

    /// Removes a singleton node and every edge touching it. Returns
    /// false (and does nothing) if the node sits inside a condensed
    /// component.
    pub fn remove_node(&mut self, k: K) -> bool {
        let Some(&s) = self.index.get(&k) else {
            return true;
        };
        if self.find(s) != s || self.slots[s].members != 1 {
            return false;
        }
        let out = std::mem::take(&mut self.slots[s].out);
        let inc = std::mem::take(&mut self.slots[s].inc);
        for e in &out {
            self.seen.remove(&(e.src, e.dst, e.label));
            let t = self.find(e.slot);
            if t != s {
                self.slots[t]
                    .inc
                    .retain(|r| !(r.src == e.src && r.dst == e.dst && r.label == e.label));
            }
        }
        for e in &inc {
            self.seen.remove(&(e.src, e.dst, e.label));
            let t = self.find(e.slot);
            if t != s {
                self.slots[t]
                    .out
                    .retain(|r| !(r.src == e.src && r.dst == e.dst && r.label == e.label));
            }
        }
        self.index.remove(&k);
        self.slots[s].live = false;
        self.free.push(s);
        true
    }

    /// Removes a singleton node like [`remove_node`], but first adds a
    /// shortcut edge `a → b` for every in-neighbour `a` and
    /// out-neighbour `b`, labelled `combine(la, lb)`, so reachability
    /// through the removed node — and therefore every *future* cycle
    /// that would have passed through it — is preserved. Returns false
    /// if the node sits inside a condensed component.
    ///
    /// Shortcuts can never close a cycle themselves: a path `b ⇒ a`
    /// plus the edges `a → k → b` would have been a cycle through `k`,
    /// contradicting `k` being a singleton in an acyclic condensation.
    ///
    /// [`remove_node`]: IncrementalDag::remove_node
    pub fn remove_node_contract(&mut self, k: K, combine: impl Fn(L, L) -> L) -> bool {
        self.remove_node_contract_report(k, combine, |_, _, _| {})
    }

    /// [`remove_node_contract`], additionally invoking `report(a, b,
    /// label)` for every shortcut edge created, *before* the shortcut
    /// is inserted. Callers that keep per-edge side data (e.g. edge
    /// provenance) use this to transfer the data from the `a → k` and
    /// `k → b` edges onto the synthesized `a → b` edge so it survives
    /// the contraction. Shortcuts are reported in a deterministic
    /// order: in-neighbours in adjacency order, each crossed with the
    /// out-neighbours in adjacency order.
    ///
    /// [`remove_node_contract`]: IncrementalDag::remove_node_contract
    pub fn remove_node_contract_report(
        &mut self,
        k: K,
        combine: impl Fn(L, L) -> L,
        mut report: impl FnMut(K, K, L),
    ) -> bool {
        let Some(&s) = self.index.get(&k) else {
            return true;
        };
        if self.find(s) != s || self.slots[s].members != 1 {
            return false;
        }
        let shortcuts: Vec<(K, K, L)> = {
            let inc = self.slots[s].inc.clone();
            let out = self.slots[s].out.clone();
            let mut v = Vec::with_capacity(inc.len() * out.len());
            for i in &inc {
                for o in &out {
                    v.push((i.src, o.dst, combine(i.label, o.label)));
                }
            }
            v
        };
        let removed = self.remove_node(k);
        debug_assert!(removed);
        for (a, b, l) in shortcuts {
            report(a, b, l);
            let r = self.add_edge(a, b, l);
            debug_assert!(
                matches!(r, Insert::Added | Insert::Duplicate | Insert::Reordered),
                "contraction shortcut must not close a cycle"
            );
        }
        true
    }

    /// Inserts the edge `from → to` (adding missing nodes), maintaining
    /// the topological order. Self-edges and duplicates are ignored.
    pub fn add_edge(&mut self, from: K, to: K, label: L) -> Insert<K, L> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = self.add_edge_in(&mut scratch, from, to, label);
        self.scratch = scratch;
        r
    }

    /// Inserts a batch of edges in order, returning one [`Insert`] per
    /// edge. *State-identical* to calling [`add_edge`] once per edge in
    /// the same order — same results, same adjacency order, same
    /// topological order values, same witness paths — so callers can
    /// batch freely without perturbing determinism contracts. What the
    /// batch buys is amortization: the Pearce–Kelly traversal buffers
    /// are reused across the whole batch, so steady-state insertion
    /// allocates nothing.
    ///
    /// [`add_edge`]: IncrementalDag::add_edge
    pub fn insert_edges(&mut self, edges: &[(K, K, L)]) -> Vec<Insert<K, L>> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = edges
            .iter()
            .map(|&(from, to, label)| self.add_edge_in(&mut scratch, from, to, label))
            .collect();
        self.scratch = scratch;
        out
    }

    fn add_edge_in(
        &mut self,
        scratch: &mut Scratch<K, L>,
        from: K,
        to: K,
        label: L,
    ) -> Insert<K, L> {
        if from == to || !self.seen.insert((from, to, label)) {
            return Insert::Duplicate;
        }
        let su = self.add_node(from);
        let sv = self.add_node(to);
        let fu = self.find(su);
        let fv = self.find(sv);
        if fu == fv {
            self.record(fu, fv, su, sv, from, to, label);
            return Insert::IntraComponent;
        }
        if self.slots[fu].ord < self.slots[fv].ord {
            self.record(fu, fv, su, sv, from, to, label);
            return Insert::Added;
        }
        // Order violation: bounded forward DFS from fv among
        // components with ord < ord[fu], watching for fu.
        scratch.reset();
        let limit = self.slots[fu].ord;
        scratch.fwd.push(fv);
        scratch.fwd_set.insert(fv);
        scratch.stack.push(fv);
        let mut cycle = false;
        while let Some(x) = scratch.stack.pop() {
            scratch.edges.clear();
            scratch.edges.extend_from_slice(&self.slots[x].out);
            for i in 0..scratch.edges.len() {
                let e = scratch.edges[i];
                let t = self.find(e.slot);
                if t == x {
                    continue;
                }
                if t == fu {
                    scratch.parent_edge.entry(fu).or_insert(e);
                    cycle = true;
                    continue;
                }
                if self.slots[t].ord < limit && scratch.fwd_set.insert(t) {
                    scratch.parent_edge.insert(t, e);
                    scratch.fwd.push(t);
                    scratch.stack.push(t);
                }
            }
        }
        if cycle {
            let info = self.condense(
                fu,
                fv,
                &scratch.fwd_set,
                &scratch.parent_edge,
                from,
                to,
                label,
                su,
                sv,
            );
            return Insert::CycleFormed(info);
        }
        // No cycle: Pearce–Kelly re-order of the affected region.
        let floor = self.slots[fv].ord;
        scratch.back.push(fu);
        scratch.back_set.insert(fu);
        scratch.stack.push(fu);
        while let Some(x) = scratch.stack.pop() {
            scratch.edges.clear();
            scratch.edges.extend_from_slice(&self.slots[x].inc);
            for i in 0..scratch.edges.len() {
                let e = scratch.edges[i];
                let t = self.find(e.slot);
                if t != x && self.slots[t].ord > floor && scratch.back_set.insert(t) {
                    scratch.back.push(t);
                    scratch.stack.push(t);
                }
            }
        }
        for &x in scratch.fwd.iter().chain(scratch.back.iter()) {
            scratch.pool.push(self.slots[x].ord);
        }
        scratch.pool.sort_unstable();
        scratch.back.sort_unstable_by_key(|&x| self.slots[x].ord);
        scratch.fwd.sort_unstable_by_key(|&x| self.slots[x].ord);
        for (&x, &o) in scratch
            .back
            .iter()
            .chain(scratch.fwd.iter())
            .zip(scratch.pool.iter())
        {
            self.slots[x].ord = o;
        }
        self.reorders += 1;
        self.record(fu, fv, su, sv, from, to, label);
        Insert::Reordered
    }

    /// Records the edge on the representatives' adjacency lists.
    #[allow(clippy::too_many_arguments)]
    fn record(&mut self, fu: usize, fv: usize, su: usize, sv: usize, from: K, to: K, label: L) {
        self.slots[fu].out.push(Edge {
            slot: sv,
            src: from,
            dst: to,
            label,
        });
        self.slots[fv].inc.push(Edge {
            slot: su,
            src: from,
            dst: to,
            label,
        });
    }

    /// Merges the components on a path `fv ⇒ fu` (plus the endpoints)
    /// into one, records the closing edge, rebuilds the global order,
    /// and reports witness + intra-component edges.
    #[allow(clippy::too_many_arguments)]
    fn condense(
        &mut self,
        fu: usize,
        fv: usize,
        fwd_set: &HashSet<usize>,
        parent_edge: &HashMap<usize, Edge<K, L>>,
        from: K,
        to: K,
        label: L,
        su: usize,
        sv: usize,
    ) -> SccInfo<K, L> {
        // Witness: the inserted edge, then the discovered path fv ⇒ fu.
        let mut path: Vec<(K, K, L)> = Vec::new();
        let mut cur = fu;
        while cur != fv {
            let e = parent_edge[&cur];
            path.push((e.src, e.dst, e.label));
            cur = self.find(self.index[&e.src]);
        }
        path.reverse();
        let mut witness = vec![(from, to, label)];
        witness.extend(path);

        // Members: components on some fv ⇒ fu path = backward DFS from
        // fu restricted to the forward set.
        let mut members: HashSet<usize> = HashSet::from([fu, fv]);
        let mut stack = vec![fu];
        while let Some(x) = stack.pop() {
            let edges = self.slots[x].inc.clone();
            for e in edges {
                let t = self.find(e.slot);
                if fwd_set.contains(&t) && members.insert(t) {
                    stack.push(t);
                }
            }
        }
        // Union into fu. Members are merged in slot order so the
        // resulting adjacency lists do not depend on hash-set iteration
        // order — the checker's verdict stream (and its crash/restore
        // snapshots) must be identical across process instances.
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        let mut out = std::mem::take(&mut self.slots[fu].out);
        let mut inc = std::mem::take(&mut self.slots[fu].inc);
        let mut total = self.slots[fu].members;
        for &m in &members {
            if m == fu {
                continue;
            }
            self.slots[m].parent = fu;
            out.append(&mut self.slots[m].out);
            inc.append(&mut self.slots[m].inc);
            total += self.slots[m].members;
        }
        self.slots[fu].out = out;
        self.slots[fu].inc = inc;
        self.slots[fu].members = total;
        self.record(fu, fu, su, sv, from, to, label);
        self.merges += 1;
        self.rebuild_order();

        let intra = self.slots[fu]
            .out
            .clone()
            .into_iter()
            .filter(|e| self.find(e.slot) == fu)
            .map(|e| (e.src, e.dst, e.label))
            .collect();
        SccInfo {
            witness,
            intra_edges: intra,
        }
    }

    /// Recomputes a full topological order of the condensation (used
    /// after a merge, which is rare: each merge latches a phenomenon).
    fn rebuild_order(&mut self) {
        let reps: Vec<usize> = {
            let slots: Vec<usize> = self.index.values().copied().collect();
            let mut set = HashSet::new();
            for s in slots {
                set.insert(self.find(s));
            }
            // Sorted so the rebuilt order is a pure function of the
            // graph, not of hash-set iteration order (determinism
            // contract: identical op sequences must produce identical
            // orders in any process, including one restored from a
            // snapshot).
            let mut v: Vec<usize> = set.into_iter().collect();
            v.sort_unstable();
            v
        };
        // Iterative DFS post-order over the condensation.
        let mut state: HashMap<usize, u8> = HashMap::new(); // 1 = open, 2 = done
        let mut post: Vec<usize> = Vec::new();
        for &r in &reps {
            if state.contains_key(&r) {
                continue;
            }
            let mut stack = vec![(r, false)];
            while let Some((x, expanded)) = stack.pop() {
                if expanded {
                    state.insert(x, 2);
                    post.push(x);
                    continue;
                }
                match state.get(&x) {
                    Some(_) => continue,
                    None => {
                        state.insert(x, 1);
                        stack.push((x, true));
                        let edges = self.slots[x].out.clone();
                        for e in edges {
                            let t = self.find(e.slot);
                            if t != x && !state.contains_key(&t) {
                                stack.push((t, false));
                            }
                        }
                    }
                }
            }
        }
        // Reverse post-order = topological order.
        let n = post.len() as u64;
        for (i, &x) in post.iter().rev().enumerate() {
            self.slots[x].ord = i as u64;
        }
        self.next_ord = n;
    }
}

impl<K, L> IncrementalDag<K, L>
where
    K: Copy + Eq + Hash + Ord,
    L: Copy + Eq + Hash + Ord,
{
    /// Flattens the graph's exact internal state into a [`DagParts`]
    /// image (see its docs for the round-trip guarantee).
    pub fn to_parts(&self) -> DagParts<K, L> {
        let flat = |es: &[Edge<K, L>]| -> Vec<EdgeParts<K, L>> {
            es.iter().map(|e| (e.slot, e.src, e.dst, e.label)).collect()
        };
        let mut index: Vec<(K, usize)> = self.index.iter().map(|(&k, &s)| (k, s)).collect();
        index.sort_unstable();
        let mut seen: Vec<(K, K, L)> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        DagParts {
            slots: self
                .slots
                .iter()
                .map(|s| SlotParts {
                    parent: s.parent,
                    live: s.live,
                    ord: s.ord,
                    members: s.members,
                    out: flat(&s.out),
                    inc: flat(&s.inc),
                })
                .collect(),
            index,
            free: self.free.clone(),
            seen,
            next_ord: self.next_ord,
            reorders: self.reorders,
            merges: self.merges,
        }
    }

    /// Reconstructs a graph from a [`to_parts`] image.
    ///
    /// [`to_parts`]: IncrementalDag::to_parts
    pub fn from_parts(parts: DagParts<K, L>) -> Self {
        let unflat = |es: Vec<EdgeParts<K, L>>| -> Vec<Edge<K, L>> {
            es.into_iter()
                .map(|(slot, src, dst, label)| Edge {
                    slot,
                    src,
                    dst,
                    label,
                })
                .collect()
        };
        IncrementalDag {
            slots: parts
                .slots
                .into_iter()
                .map(|s| Slot {
                    parent: s.parent,
                    live: s.live,
                    ord: s.ord,
                    members: s.members,
                    out: unflat(s.out),
                    inc: unflat(s.inc),
                })
                .collect(),
            index: parts.index.into_iter().collect(),
            free: parts.free,
            seen: parts.seen.into_iter().collect(),
            next_ord: parts.next_ord,
            reorders: parts.reorders,
            merges: parts.merges,
            scratch: Scratch::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_inserts_stay_cheap() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        for i in 0..100u32 {
            assert_eq!(g.add_edge(i, i + 1, 'd'), Insert::Added);
        }
        assert_eq!(g.reorders(), 0);
        assert_eq!(g.node_count(), 101);
    }

    #[test]
    fn back_edge_reorders_without_cycle() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_node(1);
        g.add_node(2); // 1 before 2 in insertion order
        assert_eq!(g.add_edge(2, 1, 'd'), Insert::Reordered);
        assert_eq!(g.reorders(), 1);
        // Order now respects 2 -> 1, so a second aligned edge is free.
        assert_eq!(g.add_edge(2, 1, 'e'), Insert::Added);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        assert_eq!(g.add_edge(1, 2, 'd'), Insert::Added);
        assert_eq!(g.add_edge(1, 2, 'd'), Insert::Duplicate);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn two_cycle_condenses_with_witness() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        match g.add_edge(2, 1, 'b') {
            Insert::CycleFormed(info) => {
                assert_eq!(info.witness[0], (2, 1, 'b'));
                assert!(info.witness.contains(&(1, 2, 'a')));
                assert_eq!(info.intra_edges.len(), 2);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
        // Later edges between the merged nodes are intra-component.
        assert_eq!(g.add_edge(1, 2, 'c'), Insert::IntraComponent);
        assert!(!g.is_removable(1));
    }

    #[test]
    fn long_cycle_witness_walks_the_path() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        g.add_edge(2, 3, 'a');
        g.add_edge(3, 4, 'a');
        match g.add_edge(4, 1, 'z') {
            Insert::CycleFormed(info) => {
                assert_eq!(info.witness.len(), 4);
                assert_eq!(info.witness[0], (4, 1, 'z'));
                assert_eq!(info.intra_edges.len(), 4);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn graph_keeps_working_after_a_merge() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        g.add_edge(2, 1, 'a');
        // New nodes around the component still topo-sort and detect
        // later cycles through the component.
        assert!(matches!(
            g.add_edge(0, 1, 'a'),
            Insert::Added | Insert::Reordered
        ));
        assert!(matches!(
            g.add_edge(2, 3, 'a'),
            Insert::Added | Insert::Reordered
        ));
        match g.add_edge(3, 0, 'a') {
            Insert::CycleFormed(info) => {
                assert!(info.intra_edges.iter().any(|&(s, d, _)| s == 3 && d == 0));
            }
            other => panic!("expected cycle through the component, got {other:?}"),
        }
    }

    #[test]
    fn remove_singleton_and_reuse() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        g.add_edge(2, 3, 'a');
        assert!(g.is_removable(1));
        assert!(g.remove_node(1));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        // 1 can come back as a fresh node with no stale edges, and it
        // participates in new cycles like any other node.
        g.add_node(1);
        assert_eq!(g.add_edge(3, 1, 'a'), Insert::Added);
        assert!(matches!(g.add_edge(1, 2, 'b'), Insert::CycleFormed(_)));
    }

    #[test]
    fn removal_refuses_condensed_nodes() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        g.add_edge(2, 1, 'a');
        assert!(!g.remove_node(1));
        assert!(g.contains(1));
    }

    #[test]
    fn contraction_preserves_future_cycles() {
        let mut g: IncrementalDag<u32, u8> = IncrementalDag::new();
        g.add_edge(1, 2, 0); // a -> k
        g.add_edge(2, 3, 1); // k -> b (label 1 = "anti")
        assert!(g.remove_node_contract(2, |a, b| a | b));
        assert!(!g.contains(2));
        // The shortcut 1 -> 3 carries the combined label, and a later
        // back edge still closes the cycle the interior node mediated.
        match g.add_edge(3, 1, 0) {
            Insert::CycleFormed(info) => {
                assert!(info.intra_edges.contains(&(1, 3, 1)));
            }
            other => panic!("expected cycle via shortcut, got {other:?}"),
        }
    }

    #[test]
    fn contraction_reports_shortcuts_in_order() {
        let mut g: IncrementalDag<u32, u8> = IncrementalDag::new();
        g.add_edge(1, 2, 0); // a1 -> k
        g.add_edge(4, 2, 1); // a2 -> k
        g.add_edge(2, 3, 1); // k -> b1
        g.add_edge(2, 5, 0); // k -> b2
        let mut seen = Vec::new();
        assert!(g.remove_node_contract_report(2, |a, b| a | b, |a, b, l| seen.push((a, b, l))));
        // in-neighbours in adjacency order, crossed with out-neighbours.
        assert_eq!(seen, vec![(1, 3, 1), (1, 5, 0), (4, 3, 1), (4, 5, 1)]);
        // Reported shortcuts match what was actually inserted.
        assert_eq!(g.edge_count(), 4);
        // Absent node: nothing reported, still "removed".
        seen.clear();
        assert!(g.remove_node_contract_report(99, |a, b| a | b, |a, b, l| seen.push((a, b, l))));
        assert!(seen.is_empty());
    }

    #[test]
    fn parts_round_trip_is_exact() {
        // Build a graph that has seen it all: plain inserts, a
        // reorder, a condensation, and a removal (so the free list is
        // non-empty) — then flatten, restore, and check that both
        // copies answer an identical stream of future operations
        // identically.
        let mut g: IncrementalDag<u32, u8> = IncrementalDag::new();
        g.add_edge(1, 2, 0);
        g.add_edge(3, 4, 0);
        g.add_node(5);
        g.add_edge(4, 1, 1); // reorder
        g.add_edge(2, 3, 0);
        assert!(matches!(
            g.add_edge(1, 3, 1),
            Insert::IntraComponent | Insert::CycleFormed(_)
        ));
        let _ = g.add_edge(2, 1, 2); // condense (or intra if already merged)
        assert!(g.remove_node(5));
        let parts = g.to_parts();
        let mut h = IncrementalDag::from_parts(parts.clone());
        assert_eq!(h.to_parts(), parts, "restore must reproduce the image");
        for (a, b, l) in [(6, 1, 0u8), (2, 6, 1), (6, 7, 0), (7, 6, 2), (4, 2, 0)] {
            assert_eq!(
                g.add_edge(a, b, l),
                h.add_edge(a, b, l),
                "ops diverged at {a}->{b}"
            );
        }
        assert_eq!(
            g.to_parts(),
            h.to_parts(),
            "states diverged after identical ops"
        );
    }

    #[test]
    fn insert_edges_matches_per_edge_inserts() {
        // The batched path must be state-identical to per-edge inserts:
        // same Insert results (including witness paths) and an equal
        // to_parts image after a stream covering adds, reorders,
        // condensations and intra-component edges.
        let mut x = 0x243f6a8885a308d3u64;
        let mut stream: Vec<(u32, u32, u8)> = Vec::new();
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 24) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((x >> 33) % 24) as u32;
            stream.push((a, b, (x % 3) as u8));
        }
        let mut per_edge: IncrementalDag<u32, u8> = IncrementalDag::new();
        let seq: Vec<Insert<u32, u8>> = stream
            .iter()
            .map(|&(a, b, l)| per_edge.add_edge(a, b, l))
            .collect();
        // Replay the same stream in mixed batch sizes (including empty
        // batches and batch-of-one).
        let mut batched: IncrementalDag<u32, u8> = IncrementalDag::new();
        let mut got: Vec<Insert<u32, u8>> = Vec::new();
        let mut i = 0usize;
        let mut step = 0usize;
        while i < stream.len() {
            let n = [0, 1, 7, 3, 17, 2][step % 6].min(stream.len() - i);
            step += 1;
            got.extend(batched.insert_edges(&stream[i..i + n]));
            i += n;
        }
        assert_eq!(seq, got, "batched Insert results diverged");
        assert_eq!(
            per_edge.to_parts(),
            batched.to_parts(),
            "batched state diverged"
        );
        assert!(seq.iter().any(|r| matches!(r, Insert::CycleFormed(_))));
        assert!(seq.iter().any(|r| matches!(r, Insert::Reordered)));
    }

    #[test]
    fn insert_edges_empty_batch_is_a_noop() {
        let mut g: IncrementalDag<u32, char> = IncrementalDag::new();
        g.add_edge(1, 2, 'a');
        let before = g.to_parts();
        assert!(g.insert_edges(&[]).is_empty());
        assert_eq!(g.to_parts(), before);
    }

    #[test]
    fn dense_random_inserts_never_lose_cycles() {
        // A deterministic pseudo-random stress: every edge either keeps
        // the DAG acyclic or condenses; afterwards every condensed pair
        // reports IntraComponent consistently.
        let mut g: IncrementalDag<u32, u8> = IncrementalDag::new();
        let mut x = 0x9e3779b9u64;
        let mut cycles = 0u32;
        for _ in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 33) % 20) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((x >> 33) % 20) as u32;
            if a == b {
                continue;
            }
            if let Insert::CycleFormed(_) = g.add_edge(a, b, (x % 3) as u8) {
                cycles += 1;
            }
        }
        assert!(cycles > 0, "stress should hit at least one cycle");
        assert!(g.node_count() <= 20);
    }
}

//! Graphviz DOT export for serialization graphs.
//!
//! The paper illustrates its histories with DSG drawings (Figures 3, 4
//! and 5); the `figure3`/`figure4`/`figure5` harness binaries emit these
//! drawings as DOT so they can be rendered and compared with the paper.

use std::fmt::Display;
use std::hash::Hash;

use crate::digraph::DiGraph;

/// Rendering options for [`DiGraph::to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name emitted in the `digraph <name> { … }` header.
    pub name: String,
    /// Lay out left-to-right (like the paper's figures) instead of
    /// top-to-bottom.
    pub left_to_right: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "DSG".to_string(),
            left_to_right: true,
        }
    }
}

impl<N, E> DiGraph<N, E>
where
    N: Eq + Hash + Clone + Display,
    E: Display,
{
    /// Renders the graph in Graphviz DOT syntax.
    pub fn to_dot(&self, opts: &DotOptions) -> String {
        let mut s = String::new();
        s.push_str(&format!("digraph {} {{\n", sanitize(&opts.name)));
        if opts.left_to_right {
            s.push_str("  rankdir=LR;\n");
        }
        s.push_str("  node [shape=circle];\n");
        for n in self.nodes() {
            s.push_str(&format!("  \"{}\";\n", escape(&n.to_string())));
        }
        for e in self.edges() {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                escape(&e.from.to_string()),
                escape(&e.to.to_string()),
                escape(&e.label.to_string())
            ));
        }
        s.push_str("}\n");
        s
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        g.add_edge("T1", "T2", "ww");
        let dot = g.to_dot(&DotOptions::default());
        assert!(dot.starts_with("digraph DSG {"));
        assert!(dot.contains("\"T1\" -> \"T2\" [label=\"ww\"];"));
        assert!(dot.contains("rankdir=LR;"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut g: DiGraph<String, &str> = DiGraph::new();
        g.add_edge("a\"b".to_string(), "c".to_string(), "x");
        let dot = g.to_dot(&DotOptions::default());
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn dot_sanitizes_graph_name() {
        let g: DiGraph<&str, &str> = DiGraph::new();
        let dot = g.to_dot(&DotOptions {
            name: "my graph!".to_string(),
            left_to_right: false,
        });
        assert!(dot.starts_with("digraph my_graph_ {"));
        assert!(!dot.contains("rankdir"));
    }
}

//! Iterative Tarjan strongly-connected components.
//!
//! Phenomenon detection reduces to SCC computation over a subgraph of
//! permitted edge kinds: a cycle of the permitted kinds exists iff some
//! SCC restricted to those edges is non-trivial. Tarjan is implemented
//! iteratively so deep histories (hundreds of thousands of transactions)
//! cannot overflow the stack.

use std::hash::Hash;

use crate::digraph::{DiGraph, NodeIdx};

impl<N, E> DiGraph<N, E>
where
    N: Eq + Hash + Clone,
{
    /// Strongly-connected components over the subgraph of edges whose
    /// label satisfies `edge_ok`.
    ///
    /// Returns the components in reverse topological order (Tarjan's
    /// natural output order). Singleton components without a self-loop
    /// are included; callers that want only *cyclic* components should
    /// filter with [`DiGraph::scc_is_cyclic`].
    pub fn sccs_filtered(&self, mut edge_ok: impl FnMut(&E) -> bool) -> Vec<Vec<NodeIdx>> {
        let n = self.node_count();
        let mut state = TarjanState::new(n);
        for start in 0..n {
            if state.index_of[start].is_none() {
                state.run(self, NodeIdx(start as u32), &mut edge_ok);
            }
        }
        state.components
    }

    /// Strongly-connected components over all edges.
    pub fn sccs(&self) -> Vec<Vec<NodeIdx>> {
        self.sccs_filtered(|_| true)
    }

    /// True if component `comp` contains a cycle using only edges whose
    /// label satisfies `edge_ok`: either it has at least two nodes, or
    /// its single node carries a satisfying self-loop.
    pub fn scc_is_cyclic(&self, comp: &[NodeIdx], mut edge_ok: impl FnMut(&E) -> bool) -> bool {
        match comp {
            [] => false,
            [only] => self.out[only.index()]
                .iter()
                .any(|e| e.to == *only && edge_ok(&e.label)),
            _ => true,
        }
    }

    /// True if the subgraph of edges satisfying `edge_ok` is acyclic.
    pub fn is_acyclic_filtered(&self, mut edge_ok: impl FnMut(&E) -> bool) -> bool {
        self.sccs_filtered(&mut edge_ok)
            .iter()
            .all(|c| !self.scc_is_cyclic(c, &mut edge_ok))
    }

    /// True if the whole graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.is_acyclic_filtered(|_| true)
    }

    /// A topological order of the nodes, or `None` if the graph is
    /// cyclic. Useful for deriving an equivalent serial order from an
    /// acyclic DSG.
    pub fn topo_order(&self) -> Option<Vec<NodeIdx>> {
        let comps = self.sccs();
        let mut order = Vec::with_capacity(self.node_count());
        for comp in comps.iter().rev() {
            if self.scc_is_cyclic(comp, |_| true) {
                return None;
            }
            order.extend_from_slice(comp);
        }
        Some(order)
    }
}

struct TarjanState {
    index_of: Vec<Option<u32>>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<NodeIdx>,
    next_index: u32,
    components: Vec<Vec<NodeIdx>>,
}

enum Frame {
    /// Visit `node` for the first time.
    Enter(NodeIdx),
    /// Resume `node` after returning from visiting `child`.
    Resume(NodeIdx, NodeIdx),
}

impl TarjanState {
    fn new(n: usize) -> Self {
        TarjanState {
            index_of: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        }
    }

    fn run<N, E>(&mut self, g: &DiGraph<N, E>, root: NodeIdx, edge_ok: &mut impl FnMut(&E) -> bool)
    where
        N: Eq + Hash + Clone,
    {
        let mut work = vec![Frame::Enter(root)];
        // Per-node cursor into the adjacency list, so each edge is
        // examined once across the whole traversal.
        let mut cursor = vec![0usize; g.node_count()];

        while let Some(frame) = work.pop() {
            let v = match frame {
                Frame::Enter(v) => {
                    self.index_of[v.index()] = Some(self.next_index);
                    self.lowlink[v.index()] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v.index()] = true;
                    v
                }
                Frame::Resume(v, child) => {
                    let cl = self.lowlink[child.index()];
                    if cl < self.lowlink[v.index()] {
                        self.lowlink[v.index()] = cl;
                    }
                    v
                }
            };

            // Advance v's edge cursor, descending into unvisited children.
            let mut descended = false;
            while cursor[v.index()] < g.out[v.index()].len() {
                let ei = cursor[v.index()];
                cursor[v.index()] += 1;
                let edge = &g.out[v.index()][ei];
                if !edge_ok(&edge.label) {
                    continue;
                }
                let w = edge.to;
                match self.index_of[w.index()] {
                    None => {
                        work.push(Frame::Resume(v, w));
                        work.push(Frame::Enter(w));
                        descended = true;
                        break;
                    }
                    Some(wi) => {
                        if self.on_stack[w.index()] && wi < self.lowlink[v.index()] {
                            self.lowlink[v.index()] = wi;
                        }
                    }
                }
            }
            if descended {
                continue;
            }

            // v is finished; if it is a root, pop its component.
            if Some(self.lowlink[v.index()]) == self.index_of[v.index()] {
                let mut comp = Vec::new();
                loop {
                    let w = self.stack.pop().expect("tarjan stack underflow");
                    self.on_stack[w.index()] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.components.push(comp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::DiGraph;

    fn labels(g: &DiGraph<&str, u8>, comps: &[Vec<crate::NodeIdx>]) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = comps
            .iter()
            .map(|c| {
                let mut v: Vec<String> = c.iter().map(|&ix| g.node(ix).to_string()).collect();
                v.sort();
                v
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn single_node_no_selfloop_is_acyclic() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_node("a");
        assert!(g.is_acyclic());
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "a", 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 0);
        g.add_edge("b", "a", 0);
        assert!(!g.is_acyclic());
        let comps = g.sccs();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 2);
    }

    #[test]
    fn dag_components_are_singletons() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 0);
        g.add_edge("b", "c", 0);
        g.add_edge("a", "c", 0);
        assert!(g.is_acyclic());
        assert_eq!(g.sccs().len(), 3);
    }

    #[test]
    fn filter_hides_cycle_edges() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 1);
        g.add_edge("b", "a", 2);
        assert!(!g.is_acyclic());
        // Ignoring label-2 edges breaks the cycle.
        assert!(g.is_acyclic_filtered(|&l| l == 1));
    }

    #[test]
    fn nested_sccs() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        // Component {a,b,c}, component {d,e}, bridge c->d.
        g.add_edge("a", "b", 0);
        g.add_edge("b", "c", 0);
        g.add_edge("c", "a", 0);
        g.add_edge("c", "d", 0);
        g.add_edge("d", "e", 0);
        g.add_edge("e", "d", 0);
        let comps = g.sccs();
        let ls = labels(&g, &comps);
        assert!(ls.contains(&vec!["a".to_string(), "b".to_string(), "c".to_string()]));
        assert!(ls.contains(&vec!["d".to_string(), "e".to_string()]));
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 0);
        g.add_edge("b", "c", 0);
        g.add_edge("a", "c", 0);
        let order = g.topo_order().expect("acyclic");
        let pos = |name: &str| {
            order
                .iter()
                .position(|&ix| *g.node(ix) == name)
                .expect("present")
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn topo_order_none_when_cyclic() {
        let mut g: DiGraph<&str, u8> = DiGraph::new();
        g.add_edge("a", "b", 0);
        g.add_edge("b", "a", 0);
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // A 200k-node path plus a closing edge: recursion would blow the
        // stack, the iterative implementation must not.
        let mut g: DiGraph<u32, ()> = DiGraph::with_capacity(200_000);
        for i in 0..200_000u32 {
            g.add_edge(i, i + 1, ());
        }
        g.add_edge(200_000, 0, ());
        assert!(!g.is_acyclic());
        let comps = g.sccs();
        assert!(comps.iter().any(|c| c.len() == 200_001));
    }
}

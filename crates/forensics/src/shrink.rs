//! Greedy history minimization (delta debugging over transactions and
//! events), in the spirit of Elle's minimal counterexamples.
//!
//! The shrinker works on [`HistoryParts`]: remove a candidate
//! transaction or event, re-validate through [`History::from_parts`]
//! (an invalid candidate — say, a removed writer whose version someone
//! still reads — is simply skipped), and re-run detection. A removal
//! is kept only when the detected **phenomenon-kind set is unchanged**,
//! which in particular keeps every phenomenon the caller cares about
//! while guaranteeing the shrunk witness never acquires anomalies the
//! original history did not have.

use std::collections::BTreeSet;

use adya_core::{detect_all, PhenomenonKind};
use adya_history::{Event, History, HistoryParts, TxnId};

/// The set of phenomenon kinds present in `h`.
pub fn detected_kinds(h: &History) -> BTreeSet<PhenomenonKind> {
    detect_all(h).iter().map(|p| p.kind()).collect()
}

/// Greedily shrinks `h` to a minimal sub-history with exactly the same
/// detected phenomenon set: first whole transactions, then individual
/// events, repeated to a fixpoint. Deterministic: candidates are tried
/// in ascending transaction-id order and descending event order.
///
/// "Minimal" is 1-minimal in the delta-debugging sense — no single
/// remaining transaction or event can be removed without changing the
/// phenomenon set — not globally minimum, which would be exponential.
pub fn minimize(h: &History) -> History {
    let baseline = detected_kinds(h);
    let mut cur = h.clone();
    loop {
        let mut changed = false;
        // Pass 1: whole transactions.
        let txn_ids: Vec<TxnId> = cur.txns().map(|(t, _)| t).collect();
        for t in txn_ids {
            let cand = without_txn(&cur.to_parts(), t);
            if let Some(next) = accept(cand, &baseline) {
                cur = next;
                changed = true;
            }
        }
        // Pass 2: individual events, last first so indices of
        // still-unvisited candidates stay valid across removals.
        let mut i = cur.len();
        while i > 0 {
            i -= 1;
            if let Some(cand) = without_event(&cur.to_parts(), i) {
                if let Some(next) = accept(cand, &baseline) {
                    cur = next;
                    changed = true;
                }
            }
            i = i.min(cur.len());
        }
        if !changed {
            return cur;
        }
    }
}

/// Validates a candidate and keeps it only if the phenomenon set is
/// untouched.
fn accept(cand: HistoryParts, baseline: &BTreeSet<PhenomenonKind>) -> Option<History> {
    let h = History::from_parts(cand).ok()?;
    (&detected_kinds(&h) == baseline).then_some(h)
}

/// `parts` with every trace of transaction `t` removed: its events,
/// its versions in every version order, and its level request.
fn without_txn(parts: &HistoryParts, t: TxnId) -> HistoryParts {
    let mut p = parts.clone();
    p.events.retain(|e| e.txn() != t);
    for order in p.version_orders.values_mut() {
        order.retain(|v| v.txn != t);
    }
    p.version_orders.retain(|_, order| !order.is_empty());
    p.levels.remove(&t);
    p
}

/// `parts` with the event at `idx` removed (plus, for a write, its
/// version's entry in the version order). Terminal events are never
/// candidates: removing a commit would silently abort the transaction
/// and change far more than one operation.
fn without_event(parts: &HistoryParts, idx: usize) -> Option<HistoryParts> {
    let ev = parts.events.get(idx)?;
    if ev.is_terminal() {
        return None;
    }
    let mut p = parts.clone();
    if let Event::Write(w) = ev {
        let vid = w.version();
        if let Some(order) = p.version_orders.get_mut(&w.object) {
            order.retain(|v| *v != vid);
            if order.is_empty() {
                p.version_orders.remove(&w.object);
            }
        }
    }
    p.events.remove(idx);
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    #[test]
    fn wcycle_is_already_minimal() {
        // H_wcycle (§5.1): both transactions and all four writes are
        // needed for the G0 cycle.
        let h =
            parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]").unwrap();
        let m = minimize(&h);
        assert_eq!(m.committed_txns().count(), 2);
        assert_eq!(detected_kinds(&m), detected_kinds(&h));
    }

    #[test]
    fn bystander_transaction_is_removed() {
        // T3 reads its own island and takes no part in the G0 cycle.
        let h = parse_history(
            "w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 w3(z,1) c3 r4(z3) c4 [x1 << x2, y2 << y1]",
        )
        .unwrap();
        assert_eq!(h.committed_txns().count(), 4);
        let m = minimize(&h);
        assert_eq!(m.committed_txns().count(), 2, "{m}");
        assert_eq!(detected_kinds(&m), detected_kinds(&h));
    }

    #[test]
    fn irrelevant_read_is_removed() {
        // The read r2(y1) rides along but G1a needs only the aborted
        // read of x.
        let h = parse_history("w1(x,1) w1(y,1) r2(x1) r2(y1) a1 c2").unwrap();
        let m = minimize(&h);
        assert!(m.len() < h.len(), "{m}");
        assert_eq!(detected_kinds(&m), detected_kinds(&h));
    }

    #[test]
    fn clean_history_minimizes_to_nothing() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        assert!(detected_kinds(&h).is_empty());
        let m = minimize(&h);
        // With no phenomena to preserve the whole history shrinks away.
        assert_eq!(m.committed_txns().count(), 0, "{m}");
    }
}

//! Forensics for isolation violations, in the style of Elle's minimal
//! counterexamples (Kingsbury & Alvaro, VLDB 2020) and Jepsen's
//! per-transaction timeline views.
//!
//! The paper's whole contribution is *why* a history fails a level —
//! a concrete cycle of ww/wr/rw edges in the DSG. This crate turns
//! that cycle into an auditable artifact:
//!
//! * [`minimize`] shrinks a violating history to a **minimal
//!   sub-history** (greedy transaction- then event-removal with
//!   re-validation and re-detection) that exhibits exactly the same
//!   phenomenon set;
//! * [`extract`] builds a structured [`Witness`] — the shortest
//!   offending cycle over the minimal history, each edge mapped back
//!   to the concrete operations, versions, and predicate version-sets
//!   that induced it (via [`adya_core::Dsg::provenance`]);
//! * [`narrative`] renders the witness for `adya-check explain` (one
//!   paragraph per edge, paper notation), [`cycle_dot`] draws just the
//!   offending cycle as Graphviz DOT, and [`trace_json`] exports a
//!   Perfetto/Chrome-trace timeline with one track per transaction.

#![warn(missing_docs)]

mod render;
mod shrink;
mod trace;
mod witness;

pub use render::{cycle_dot, narrative};
pub use shrink::{detected_kinds, minimize};
pub use trace::{trace_json, trace_json_with_journal};
pub use witness::{extract, extract_all, EdgeOp, Witness, WitnessEdge};

#[cfg(test)]
mod tests {
    use super::*;
    use adya_core::{analyze, PhenomenonKind};
    use adya_history::parse_history;

    #[test]
    fn g0_witness_cites_both_ww_edges() {
        let h =
            parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]").unwrap();
        let w = extract(&h, PhenomenonKind::G0).expect("G0 witness");
        assert_eq!(w.minimal_history.txns().count(), 2);
        assert_eq!(w.cycle.len(), 2);
        for e in &w.cycle {
            assert!(!e.ops.is_empty(), "edge {:?} cites no operations", e.kind);
            for op in &e.ops {
                assert!(op.citation.contains("installed"), "{}", op.citation);
                assert!(op.citation.contains("event"), "{}", op.citation);
            }
        }
        let text = narrative(&w);
        assert!(text.contains("G0"), "{text}");
        assert!(text.contains("-[ww]->"), "{text}");
    }

    #[test]
    fn read_skew_minimizes_to_two_txns() {
        // H2 (§2/§4): classic read skew — G2 with a 2-txn minimum.
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let w = extract(&h, PhenomenonKind::G2).expect("G2 witness");
        assert_eq!(w.minimal_history.txns().count(), 2, "{}", w.minimal_history);
        assert!(w.cycle.iter().any(|e| e.kind.is_anti()));
        let dot = cycle_dot(&w, "read_skew");
        assert!(dot.starts_with("digraph read_skew {"), "{dot}");
        assert!(dot.contains("label=\"rw"), "{dot}");
    }

    #[test]
    fn g1a_witness_has_no_cycle_but_a_narrative() {
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let w = extract(&h, PhenomenonKind::G1a).expect("G1a witness");
        assert!(w.cycle.is_empty());
        let text = narrative(&w);
        assert!(text.contains("G1a"), "{text}");
        let dot = cycle_dot(&w, "g1a");
        assert!(dot.contains("wr"), "{dot}");
    }

    #[test]
    fn missing_phenomenon_yields_none() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        assert!(extract(&h, PhenomenonKind::G0).is_none());
        assert!(extract_all(&h).is_empty());
    }

    #[test]
    fn trace_export_has_required_keys_per_event() {
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let a = analyze(&h);
        let json = trace_json(&h, Some(&a));
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        // Every emitted record carries the Chrome trace-event required
        // keys.
        for line in json
            .lines()
            .filter(|l| l.starts_with('{') && l.contains("\"ph\""))
        {
            for key in ["\"name\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
        assert!(json.contains("\"anomalies\""), "{json}");
        assert!(json.contains("\"G2\""), "{json}");
        // Balanced braces and quotes — cheap well-formedness checks.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn trace_journal_track_is_appended() {
        let h = parse_history("w1(x,1) c1").unwrap();
        let json = trace_json_with_journal(&h, None, &[(42, "deadlock.victim".to_string())]);
        assert!(json.contains("\"journal\""), "{json}");
        assert!(json.contains("deadlock.victim"), "{json}");
        assert!(json.contains("\"t_ns\":42"), "{json}");
    }
}

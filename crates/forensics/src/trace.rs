//! Chrome-trace / Perfetto JSON export: per-transaction tracks laid
//! out over the history's event order (the recorder's stable event
//! ids), so a violation can be scrubbed visually.
//!
//! The output is the Chrome trace-event format (JSON object form):
//! every event carries the required keys `name`, `ph`, `ts`, `pid`,
//! `tid`. Each transaction becomes one track (`tid` = transaction id)
//! holding one complete (`"X"`) span from its first to its terminal
//! event plus one instant (`"i"`) event per operation; detected
//! phenomena land on a dedicated `anomalies` track. Timestamps are the
//! event's position in the history, scaled to 1 ms per event — event
//! *order*, which is what the model defines, not wall-clock time.

use std::fmt::Write as _;

use adya_core::Analysis;
use adya_history::{History, TxnId};

/// Track id for the anomaly markers (far above any transaction id).
const ANOMALY_TID: u64 = 1_000_000;
/// Track id for caller-supplied journal annotations.
const JOURNAL_TID: u64 = 1_000_001;

/// Microseconds allotted to one history event.
const SLOT_US: u64 = 1_000;

/// Renders `h` (and, when given, the phenomena of `a`) as a Chrome
/// trace-event JSON document.
pub fn trace_json(h: &History, a: Option<&Analysis>) -> String {
    trace_json_with_journal(h, a, &[])
}

/// [`trace_json`] with extra annotation instants appended on a
/// `journal` track — `(t_ns, name)` pairs from e.g. the obs journal.
/// Journal instants are laid out after the history events in their
/// given order (their wall-clock `t_ns` is preserved in `args`, the
/// timeline position is ordinal like everything else).
pub fn trace_json_with_journal(
    h: &History,
    a: Option<&Analysis>,
    journal: &[(u64, String)],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&ev);
    };

    // One track per transaction, in id order.
    let txns: Vec<TxnId> = h.txns().map(|(t, _)| t).collect();
    for &t in &txns {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.0,
                esc(&t.to_string())
            ),
        );
        let indices: Vec<usize> = h
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.txn() == t)
            .map(|(i, _)| i)
            .collect();
        let (Some(&lo), Some(&hi)) = (indices.first(), indices.last()) else {
            continue;
        };
        let committed = h.is_committed(t);
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"events\":{},\"committed\":{}}}}}",
                esc(&t.to_string()),
                lo as u64 * SLOT_US,
                (hi - lo) as u64 * SLOT_US + SLOT_US,
                t.0,
                indices.len(),
                committed
            ),
        );
        for i in indices {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"event\":{}}}}}",
                    esc(&h.display_event(&h.events()[i])),
                    i as u64 * SLOT_US,
                    t.0,
                    i
                ),
            );
        }
    }

    // Anomaly markers.
    if let Some(a) = a {
        if !a.phenomena.is_empty() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\
                     \"tid\":{ANOMALY_TID},\"args\":{{\"name\":\"anomalies\"}}}}"
                ),
            );
            for p in &a.phenomena {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"anomaly\",\"ph\":\"i\",\"s\":\"g\",\
                         \"ts\":{},\"pid\":1,\"tid\":{ANOMALY_TID},\
                         \"args\":{{\"witness\":\"{}\"}}}}",
                        esc(&p.kind().to_string()),
                        h.len() as u64 * SLOT_US,
                        esc(&p.to_string())
                    ),
                );
            }
        }
    }

    // Journal annotations.
    if !journal.is_empty() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\
                 \"tid\":{JOURNAL_TID},\"args\":{{\"name\":\"journal\"}}}}"
            ),
        );
        for (i, (t_ns, name)) in journal.iter().enumerate() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"journal\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":1,\"tid\":{JOURNAL_TID},\"args\":{{\"t_ns\":{}}}}}",
                    esc(name),
                    (h.len() + i) as u64 * SLOT_US,
                    t_ns
                ),
            );
        }
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

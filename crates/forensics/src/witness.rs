//! Structured violation witnesses: the offending cycle, the concrete
//! operations behind each edge, and the minimal sub-history.

use adya_core::{detect_all, Conflict, DepKind, Dsg, Phenomenon, PhenomenonKind};
use adya_history::{History, ObjectId, PredicateId, TxnId, VersionId};

use crate::shrink::{detected_kinds, minimize};

/// One concrete operation citation behind a witness edge.
#[derive(Debug, Clone)]
pub struct EdgeOp {
    /// The underlying direct conflict (object / version / predicate).
    pub conflict: Conflict,
    /// Human-readable citation in the paper's notation, naming the
    /// inducing events and their positions in the minimal history.
    pub citation: String,
}

/// One edge of the witness cycle with its provenance.
#[derive(Debug, Clone)]
pub struct WitnessEdge {
    /// Depended-on transaction Ti.
    pub from: TxnId,
    /// Depending transaction Tj.
    pub to: TxnId,
    /// Edge kind (ww / wr / rw, item or predicate).
    pub kind: DepKind,
    /// The operations that induced the edge, one per object/predicate.
    pub ops: Vec<EdgeOp>,
}

/// A forensic witness for one phenomenon: the shortest offending cycle
/// over a minimal sub-history, with every edge mapped back to the
/// operations that induced it.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The phenomenon this witness exhibits.
    pub kind: PhenomenonKind,
    /// The re-detected phenomenon on the minimal history (its witness
    /// cycle, for the cycle-shaped kinds).
    pub phenomenon: Phenomenon,
    /// The minimal sub-history still exhibiting the phenomenon.
    pub minimal_history: History,
    /// Transactions removed by shrinking.
    pub removed_txns: usize,
    /// Events removed by shrinking (beyond whole-transaction removals).
    pub removed_events: usize,
    /// The witness cycle with per-edge provenance; empty for the
    /// non-cycle phenomena (G1a, G1b, G-SIa, G-monotonic).
    pub cycle: Vec<WitnessEdge>,
}

impl Witness {
    /// Stable witness id: [`adya_obs::witness_id`] over the canonical
    /// (rotation-invariant) cycle signature, or over the phenomenon's
    /// description for the cycle-less kinds. The online checker's
    /// verdicts and health exemplars derive their `witness_id` the
    /// same way, so a fired G1c/G2 in the live plane resolves to this
    /// witness when both saw the same cycle.
    pub fn id(&self) -> String {
        let nodes: Vec<u64> = self.cycle.iter().map(|e| u64::from(e.from.0)).collect();
        adya_obs::witness_id(&self.kind.to_string(), &nodes, &self.phenomenon.to_string())
    }
}

/// Extracts a witness for `target` from `h`: shrinks the history to a
/// minimal sub-history (see [`minimize`]), re-detects the phenomenon
/// there (re-detection on the smaller DSG yields the shortest
/// offending cycle), and maps every cycle edge back to its inducing
/// operations. Returns `None` when `h` does not exhibit `target`.
pub fn extract(h: &History, target: PhenomenonKind) -> Option<Witness> {
    if !detected_kinds(h).contains(&target) {
        return None;
    }
    let minimal = minimize(h);
    let phenomenon = detect_all(&minimal)
        .into_iter()
        .find(|p| p.kind() == target)
        .expect("minimize preserves the phenomenon set");
    let dsg = Dsg::build(&minimal);
    let cycle = match phenomenon.cycle() {
        Some(c) => c
            .edges()
            .iter()
            .map(|e| WitnessEdge {
                from: e.from,
                to: e.to,
                kind: e.label,
                ops: dsg
                    .provenance(e.from, e.to, e.label)
                    .into_iter()
                    .map(|c| EdgeOp {
                        conflict: c.clone(),
                        citation: citation(&minimal, c),
                    })
                    .collect(),
            })
            .collect(),
        None => Vec::new(),
    };
    Some(Witness {
        kind: target,
        phenomenon,
        removed_txns: h.txns().count() - minimal.txns().count(),
        removed_events: h.len() - minimal.len(),
        minimal_history: minimal,
        cycle,
    })
}

/// Every witness `h` supports, one per detected phenomenon kind, in
/// detection order.
pub fn extract_all(h: &History) -> Vec<Witness> {
    detect_all(h)
        .iter()
        .filter_map(|p| extract(h, p.kind()))
        .collect()
}

/// Renders the provenance of one conflict as a citation naming the
/// concrete events (by position) in `h`.
fn citation(h: &History, c: &Conflict) -> String {
    match c.kind {
        DepKind::WriteDep => {
            let (o, v) = (
                c.object.expect("ww has object"),
                c.version.expect("ww has version"),
            );
            let next = h.next_version(o, v);
            let mut s = format!(
                "{} installed {}{}",
                c.from,
                ver(h, o, v),
                write_site(h, o, v)
            );
            match next {
                Some(n) => {
                    s.push_str(&format!(
                        "; {} installed the next version {}{}",
                        c.to,
                        ver(h, o, n),
                        write_site(h, o, n)
                    ));
                }
                None => s.push_str(&format!("; {} overwrote it", c.to)),
            }
            s
        }
        DepKind::ItemReadDep => {
            let (o, v) = (
                c.object.expect("wr has object"),
                c.version.expect("wr has version"),
            );
            format!(
                "{} read {} installed by {}{}",
                c.to,
                ver(h, o, v),
                c.from,
                read_site(h, c.to, o, v)
            )
        }
        DepKind::PredReadDep => {
            let p = c.predicate.expect("wr(pred) has predicate");
            let (o, v) = (c.object.expect("object"), c.version.expect("version"));
            format!(
                "{}'s predicate read of {} observed {} installed by {}{}",
                c.to,
                pred_name(h, p),
                ver(h, o, v),
                c.from,
                pred_site(h, c.to, p)
            )
        }
        DepKind::ItemAntiDep => {
            let (o, v) = (
                c.object.expect("rw has object"),
                c.version.expect("rw has version"),
            );
            let read = read_version_of(h, c.from, o);
            let mut s = match read {
                Some(rv) => format!(
                    "{} read {}{}",
                    c.from,
                    ver(h, o, rv),
                    read_site(h, c.from, o, rv)
                ),
                None => format!("{} read {}", c.from, h.object_name(o)),
            };
            s.push_str(&format!(
                "; {} overwrote it with {}{}",
                c.to,
                ver(h, o, v),
                write_site(h, o, v)
            ));
            s
        }
        DepKind::PredAntiDep => {
            let p = c.predicate.expect("rw(pred) has predicate");
            let (o, v) = (c.object.expect("object"), c.version.expect("version"));
            format!(
                "{}'s predicate read of {}{} changed matches when {} installed {}{} (phantom)",
                c.from,
                pred_name(h, p),
                pred_site(h, c.from, p),
                c.to,
                ver(h, o, v),
                write_site(h, o, v)
            )
        }
        DepKind::StartDep => format!("{} began after {} committed", c.to, c.from),
    }
}

/// `x[1]`-style rendering of one version of one object.
fn ver(h: &History, o: ObjectId, v: VersionId) -> String {
    format!("{}[{}]", h.object_name(o), v)
}

/// ` (w1(x[1], 2), event 0)` for the write installing `o[v]`, if found.
fn write_site(h: &History, o: ObjectId, v: VersionId) -> String {
    h.events()
        .iter()
        .position(|e| {
            e.as_write()
                .is_some_and(|w| w.object == o && w.version() == v)
        })
        .map(|i| format!(" ({}, event {})", h.display_event(&h.events()[i]), i))
        .unwrap_or_default()
}

/// ` (r2(x[1]), event 3)` for `reader`'s read of `o[v]`, if found.
fn read_site(h: &History, reader: TxnId, o: ObjectId, v: VersionId) -> String {
    h.reads_of(reader)
        .find(|(_, r)| r.object == o && r.version == v)
        .map(|(i, _)| format!(" ({}, event {})", h.display_event(&h.events()[i]), i))
        .unwrap_or_default()
}

/// ` (r1(P: …), event 0)` for `reader`'s read of predicate `p`.
fn pred_site(h: &History, reader: TxnId, p: PredicateId) -> String {
    h.events()
        .iter()
        .position(|e| {
            e.as_predicate_read()
                .is_some_and(|pr| pr.txn == reader && pr.predicate == p)
        })
        .map(|i| format!(" ({}, event {})", h.display_event(&h.events()[i]), i))
        .unwrap_or_default()
}

/// The version of `o` that `reader` observed (first matching read).
fn read_version_of(h: &History, reader: TxnId, o: ObjectId) -> Option<VersionId> {
    h.reads_of(reader)
        .find(|(_, r)| r.object == o)
        .map(|(_, r)| r.version)
}

/// The predicate's name, or its id when unknown.
fn pred_name(h: &History, p: PredicateId) -> String {
    h.predicate(p)
        .map(|i| i.name.clone())
        .unwrap_or_else(|| p.to_string())
}

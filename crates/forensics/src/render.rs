//! Human-facing renderings of a [`Witness`]: the `explain` narrative
//! (one paragraph per cycle edge, in the paper's notation) and a
//! cycle-scoped Graphviz DOT drawing.

use std::fmt::Write as _;

use adya_core::Phenomenon;

use crate::witness::Witness;

/// Renders the witness as an `adya-check explain` narrative:
/// phenomenon, minimal sub-history, then one paragraph per cycle edge
/// citing the operations that induced it. Deterministic — suitable
/// for golden-file comparison.
pub fn narrative(w: &Witness) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== {} ==", w.phenomenon);
    let _ = writeln!(s, "witness id: {}", w.id());
    let txns = w.minimal_history.txns().count();
    let _ = writeln!(
        s,
        "minimal sub-history ({} txn{}, {} events; shrink removed {} txn{}, {} events):",
        txns,
        plural(txns),
        w.minimal_history.len(),
        w.removed_txns,
        plural(w.removed_txns),
        w.removed_events,
    );
    let _ = writeln!(s, "  {}", w.minimal_history);
    if w.cycle.is_empty() {
        // Non-cycle phenomena: the phenomenon Display line above
        // already cites the reader/writer/object/version.
        let _ = writeln!(s, "  (no DSG cycle: the witness is the read itself)");
        return s;
    }
    for e in &w.cycle {
        let _ = writeln!(s, "  {} -[{}]-> {}:", e.from, e.kind, e.to);
        if e.ops.is_empty() {
            let _ = writeln!(s, "    (edge present in the DSG; no recorded conflict)");
        }
        for op in &e.ops {
            let _ = writeln!(s, "    {}.", op.citation);
        }
    }
    s
}

/// Renders only the witness cycle (not the whole DSG) as Graphviz DOT,
/// with each edge labelled by its kind and the first inducing
/// operation.
pub fn cycle_dot(w: &Witness, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", sanitize(name));
    s.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    let mut nodes: Vec<String> = Vec::new();
    for e in &w.cycle {
        for t in [e.from, e.to] {
            let t = t.to_string();
            if !nodes.contains(&t) {
                nodes.push(t);
            }
        }
    }
    for n in &nodes {
        let _ = writeln!(s, "  \"{}\";", escape(n));
    }
    for e in &w.cycle {
        let mut label = e.kind.to_string();
        if let Some(op) = e.ops.first() {
            if let (Some(o), Some(v)) = (op.conflict.object, op.conflict.version) {
                let _ = write!(label, "\\n{}[{}]", w.minimal_history.object_name(o), v);
            }
        }
        let _ = writeln!(
            s,
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            escape(&e.from.to_string()),
            escape(&e.to.to_string()),
            escape(&label)
        );
    }
    // Non-cycle phenomena still get the involved transactions drawn.
    if w.cycle.is_empty() {
        if let Phenomenon::G1a { reader, writer, .. } | Phenomenon::G1b { reader, writer, .. } =
            &w.phenomenon
        {
            let _ = writeln!(s, "  \"{writer}\";");
            let _ = writeln!(s, "  \"{reader}\";");
            let _ = writeln!(s, "  \"{writer}\" -> \"{reader}\" [label=\"wr\"];");
        }
    }
    s.push_str("}\n");
    s
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "witness".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    // Keep explicit "\n" sequences (DOT line breaks) intact: escape
    // backslashes not followed by 'n'.
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars().peekable();
    while let Some(c) = it.next() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' if it.peek() != Some(&'n') => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out
}

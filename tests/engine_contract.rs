//! Property tests of the `Engine` error contract the fault plane and
//! retry layer rely on: `Blocked` must be side-effect-free (hammering
//! a blocked operation extra times changes nothing observable) and
//! `abort` must be idempotent (re-aborting, or aborting a resolved
//! transaction, is an accepted no-op). Both properties hold across all
//! five engines.

use adya::engine::{
    CertifyLevel, Engine, EngineError, EventTap, Key, LockConfig, LockingEngine, MvccEngine,
    MvccMode, MvtoEngine, OccEngine, SeqEventTap, SgtEngine, TableId, TablePred, TxnId, Value,
};
use adya::history::History;
use adya::workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};
use proptest::prelude::*;

fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        (
            "2PL",
            Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
        ),
        ("OCC", Box::new(OccEngine::new())),
        ("SGT", Box::new(SgtEngine::new(CertifyLevel::PL3))),
        (
            "MVCC-SI",
            Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)),
        ),
        ("MVTO", Box::new(MvtoEngine::new())),
    ]
}

/// Re-issues every operation that returns `Blocked` `extra` more
/// times before reporting the block. If `Blocked` has any side effect
/// — a queue entry, a recorded event, store mutation — the amplified
/// run's history diverges from the plain run's.
struct BlockAmplifier<E> {
    inner: E,
    extra: usize,
}

impl<E: Engine> BlockAmplifier<E> {
    fn hammer<T>(&self, op: impl Fn() -> Result<T, EngineError>) -> Result<T, EngineError> {
        let r = op();
        if matches!(r, Err(EngineError::Blocked { .. })) {
            for _ in 0..self.extra {
                let again = op();
                assert!(
                    matches!(again, Err(EngineError::Blocked { .. })),
                    "a blocked op re-issued with nothing else running must block again"
                );
            }
        }
        r
    }
}

impl<E: Engine> Engine for BlockAmplifier<E> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn catalog(&self) -> &adya::engine::Catalog {
        self.inner.catalog()
    }
    fn begin(&self) -> TxnId {
        self.inner.begin()
    }
    fn read(&self, txn: TxnId, table: TableId, key: Key) -> Result<Option<Value>, EngineError> {
        self.hammer(|| self.inner.read(txn, table, key))
    }
    fn write(&self, txn: TxnId, table: TableId, key: Key, value: Value) -> Result<(), EngineError> {
        self.hammer(|| self.inner.write(txn, table, key, value.clone()))
    }
    fn delete(&self, txn: TxnId, table: TableId, key: Key) -> Result<(), EngineError> {
        self.hammer(|| self.inner.delete(txn, table, key))
    }
    fn select(&self, txn: TxnId, pred: &TablePred) -> Result<Vec<(Key, Value)>, EngineError> {
        self.hammer(|| self.inner.select(txn, pred))
    }
    fn commit(&self, txn: TxnId) -> Result<(), EngineError> {
        self.hammer(|| self.inner.commit(txn))
    }
    fn abort(&self, txn: TxnId) -> Result<(), EngineError> {
        self.inner.abort(txn)
    }
    fn set_event_tap(&self, tap: EventTap) {
        self.inner.set_event_tap(tap);
    }
    fn set_seq_event_tap(&self, tap: SeqEventTap) {
        self.inner.set_seq_event_tap(tap);
    }
    fn finalize(&self) -> History {
        self.inner.finalize()
    }
}

/// One seeded deterministic run; returns (history text, committed,
/// ops, blocked) as the observable fingerprint.
pub fn fingerprint(
    engine: Box<dyn Engine>,
    extra: usize,
    seed: u64,
) -> (String, usize, usize, usize) {
    let amp = BlockAmplifier {
        inner: engine,
        extra,
    };
    let (_, programs) = mixed_workload(
        &amp,
        &MixedConfig {
            keys: 5,
            txns: 12,
            ops_per_txn: 4,
            write_ratio: 0.6,
            abort_prob: 0.1,
            delete_prob: 0.1,
            theta: 0.8,
            seed,
        },
    );
    let stats = run_deterministic(
        &amp,
        programs,
        &DriverConfig {
            seed,
            ..Default::default()
        },
    );
    (
        amp.finalize().to_string(),
        stats.committed,
        stats.ops,
        stats.blocked,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `Blocked` leaves no trace: a run where every blocked operation
    /// is re-issued three extra times is observationally identical to
    /// the plain run — same history, same stats.
    #[test]
    fn blocked_is_side_effect_free(seed in 0u64..5_000) {
        for (name, plain) in engines() {
            let base = fingerprint(plain, 0, seed);
            let (_, amplified) = engines()
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("same engine list");
            let hammered = fingerprint(amplified, 3, seed);
            prop_assert_eq!(&base, &hammered, "{}: blocked op left a side effect", name);
        }
    }

    /// `abort` is idempotent and accepted on resolved transactions:
    /// extra aborts — of active, already-aborted, and committed
    /// transactions — all return `Ok(())` and leave the recorded
    /// history exactly as a single abort would.
    #[test]
    fn abort_is_idempotent(seed in 0u64..5_000, extra in 1usize..4) {
        for (name, e) in engines() {
            let run = |extra_aborts: usize| -> String {
                let (_, eng) = engines().into_iter().find(|(n, _)| *n == name).unwrap();
                let t = eng.catalog().table("acct");
                let k = Key(seed % 3);
                let committed = eng.begin();
                eng.write(committed, t, k, Value::Int(seed as i64)).unwrap();
                eng.commit(committed).unwrap();
                let doomed = eng.begin();
                let _ = eng.read(doomed, t, k);
                let _ = eng.write(doomed, t, Key(7), Value::Int(1));
                eng.abort(doomed).unwrap();
                for _ in 0..extra_aborts {
                    assert_eq!(eng.abort(doomed), Ok(()), "{name}: re-abort must be Ok");
                    assert_eq!(
                        eng.abort(committed),
                        Ok(()),
                        "{name}: abort of a committed txn must be an accepted no-op"
                    );
                }
                eng.finalize().to_string()
            };
            let _ = e; // the factory list's instance; fresh ones built per run
            prop_assert_eq!(run(0), run(extra), "{}: extra aborts changed the history", name);
        }
    }
}

//! The pipeline determinism contract, end to end: for every engine,
//! running a threaded workload with the staged ingest pipeline
//! attached must produce a verdict stream *byte-identical* to feeding
//! the same recorded events through a sequential per-event checker.
//!
//! The threaded schedule itself is nondeterministic — that is the
//! point. A plain [`EventTap`] capturing the recorded stream is
//! installed at the same stream position where the pipeline attaches,
//! so whatever interleaving the OS produced, both observers saw the
//! identical event sequence; the property under test is that rings +
//! sequencer + batched Pearce–Kelly application add nothing and lose
//! nothing.
//!
//! [`EventTap`]: adya::engine::EventTap

use std::sync::{Arc, Mutex};

use adya::engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine, OccEngine,
    SgtEngine,
};
use adya::history::Event;
use adya::online::{OnlineChecker, PipelineConfig};
use adya::workloads::{
    mixed_workload, run_concurrent_live, ConcurrentConfig, LiveConfig, MixedConfig,
};
use proptest::prelude::*;

/// All five engine families, one representative configuration each.
fn engines() -> Vec<(&'static str, Box<dyn Engine>)> {
    vec![
        (
            "2PL",
            Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
        ),
        ("OCC", Box::new(OccEngine::new())),
        ("SGT", Box::new(SgtEngine::new(CertifyLevel::PL3))),
        (
            "MVCC-SI",
            Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)),
        ),
        ("MVTO", Box::new(MvtoEngine::new())),
    ]
}

/// Runs one threaded workload on `engine` with both observers
/// installed and asserts the pipelined verdict stream equals the
/// sequential replay of the captured stream, byte for byte.
fn assert_pipelined_matches_sequential(
    name: &str,
    engine: Box<dyn Engine>,
    seed: u64,
    pipeline: PipelineConfig,
    threads: usize,
) {
    let (_, programs) = mixed_workload(
        &engine,
        &MixedConfig {
            keys: 5,
            txns: 16,
            ops_per_txn: 3,
            write_ratio: 0.5,
            abort_prob: 0.1,
            delete_prob: 0.05,
            theta: 0.7,
            seed,
        },
    );
    // Capture tap installed at the pipeline's attach position: both
    // see the identical event suffix, whatever the schedule was.
    let captured: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&captured);
    engine.set_event_tap(Arc::new(move |ev| sink.lock().unwrap().push(ev.clone())));
    let report = run_concurrent_live(
        &engine,
        &programs,
        &LiveConfig {
            concurrent: ConcurrentConfig {
                threads,
                seed,
                ..Default::default()
            },
            pipeline,
        },
    );
    let mut seq = OnlineChecker::new();
    let mut want = Vec::new();
    for ev in captured.lock().unwrap().iter() {
        if let Some(v) = seq.ingest(ev) {
            want.push(v.to_json());
        }
    }
    let got: Vec<String> = report.verdicts.iter().map(|v| v.to_json()).collect();
    assert_eq!(got, want, "[{name}] live verdict stream diverged");
    assert_eq!(
        report.verdict.to_json(),
        seq.finish().to_json(),
        "[{name}] closing verdict diverged"
    );
    assert_eq!(
        report.verdicts.len(),
        report.stats.committed,
        "[{name}] one verdict per driver commit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Pipelined ≡ sequential for every engine, across seeded
    /// threaded schedules and adversarial pipeline shapes (single
    /// ring, tiny rings forcing backpressure, batch size 1).
    #[test]
    fn pipelined_verdicts_equal_sequential_for_all_engines(
        seed in 0u64..1_000_000,
        rings in 1usize..4,
        ring_capacity in 2usize..32,
        max_batch in 1usize..16,
        threads in 2usize..4,
    ) {
        for (name, engine) in engines() {
            assert_pipelined_matches_sequential(
                name,
                engine,
                seed,
                PipelineConfig { rings, ring_capacity, max_batch },
                threads,
            );
        }
    }
}

//! End-to-end tests of `adya-serve`: concurrent durable sessions over
//! TCP, kill -9 / restart recovery with byte-identical resumed verdict
//! streams, abort-bearing (G1a) histories, the idle-detach deadline,
//! lines split mid-codepoint across read timeouts, the tap-side crash
//! plane, graceful SIGTERM drains, and the fleet obs endpoints on the
//! service port.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adya::online::{GcConfig, OnlineChecker, StreamParser};
use adya::workloads::{ClientError, RetryPolicy, ServeClient};

struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `adya-serve` on `listen` over `data`, returning the process
/// and the actually-bound address. Retries briefly so a restart can
/// rebind the port a killed predecessor just held.
fn spawn_server(data: &std::path::Path, listen: &str, extra: &[&str]) -> (Server, String) {
    for attempt in 0..50 {
        let mut child = Command::new(env!("CARGO_BIN_EXE_adya-serve"))
            .arg("--data")
            .arg(data)
            .args([
                "--listen",
                listen,
                "--snapshot-every",
                "8",
                "--rotate-events",
                "16",
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn adya-serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first stderr line");
        if let Some((_, addr)) = line.rsplit_once("listening on ") {
            // Keep stderr draining so the child never blocks on it.
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return (Server(child), addr.trim().to_string());
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(attempt < 49, "adya-serve kept failing to bind: {line:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    unreachable!()
}

/// A deterministic token stream for one session: interleaved begins,
/// version-correct reads, writes and commits over eight objects.
fn session_tokens(session: usize, txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 8];
    let obj = |i: usize| (b'a' + i as u8) as char;
    for t in 1..=txns {
        let wobj = ((t as usize) * 7 + session) % 8;
        let robj = ((t as usize) * 3 + session) % 8;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The uninterrupted in-process reference: same tokens, same checker
/// configuration as a server session — (verdict lines, final line).
fn reference(tokens: &[String]) -> (Vec<String>, String) {
    let mut parser = StreamParser::new();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut verdicts = Vec::new();
    for tok in tokens {
        let ev = parser.parse_token(tok).expect("reference tokens parse");
        if let Some(v) = checker.ingest(&ev) {
            verdicts.push(v.to_json());
        }
    }
    (verdicts, checker.finish().to_json())
}

/// Streams one token, transparently resuming (and counting the
/// resume) when the server is down.
fn send_resilient(client: &mut ServeClient, tok: &str, addr_hint: &str, resumes: &mut u32) {
    match client.send_token(tok) {
        Ok(()) => {}
        Err(ClientError::Io(_)) => {
            let policy = RetryPolicy {
                deadline_ops: Some(2_000),
                ..RetryPolicy::default()
            };
            client
                .resume(&policy, 0xAD7A)
                .unwrap_or_else(|e| panic!("resume against {addr_hint} failed: {e}"));
            *resumes += 1;
        }
        Err(e) => panic!("protocol error streaming {tok:?}: {e}"),
    }
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect service port");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn kill_minus_nine_resumes_four_sessions_byte_identically() {
    let data = data_dir("serve-kill");
    let (server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);

    // 4 clients + the killer thread rendezvous twice: once with every
    // session mid-stream, once after the replacement server is up.
    let barrier = Arc::new(Barrier::new(5));
    let mut handles = Vec::new();
    for s in 0..4 {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let tokens = session_tokens(s, 40);
            let name = format!("tenant-{s}");
            let mut client = ServeClient::hello(&addr, &name).expect("hello");
            let mut resumes = 0u32;
            let half = tokens.len() / 2;
            for tok in &tokens[..half] {
                send_resilient(&mut client, tok, &addr, &mut resumes);
            }
            barrier.wait(); // everyone is mid-stream
            barrier.wait(); // the server has been killed and restarted
            for tok in &tokens[half..] {
                send_resilient(&mut client, tok, &addr, &mut resumes);
            }
            let verdicts = client.verdicts().to_vec();
            let fin = client.close().expect("close");
            (tokens, verdicts, fin, resumes)
        }));
    }

    barrier.wait();
    drop(server); // SIGKILL — no flush, no goodbye
    let (_server2, addr2) = spawn_server(&data, &addr, &[]);
    assert_eq!(
        addr2, addr,
        "replacement server must rebind the same address"
    );
    barrier.wait();

    let mut total_resumes = 0;
    for handle in handles {
        let (tokens, verdicts, fin, resumes) = handle.join().expect("client thread");
        let (want_verdicts, want_final) = reference(&tokens);
        assert_eq!(
            verdicts, want_verdicts,
            "resumed verdict stream must be byte-identical to the uninterrupted run"
        );
        assert_eq!(fin, want_final, "final verdict must match the reference");
        total_resumes += resumes;
    }
    assert!(
        total_resumes >= 4,
        "every session must actually have resumed across the kill (got {total_resumes})"
    );
}

#[test]
fn tap_crash_point_aborts_the_server_and_recovery_closes_the_gap() {
    let data = data_dir("serve-tap");
    // The tap plane fires after the 30th non-commit event is durable
    // but before it is applied — the exact durable-but-unapplied
    // window recovery must close.
    let (server, addr) = spawn_server(&data, "127.0.0.1:0", &["--crash-at-event", "30"]);

    let tokens = session_tokens(0, 30);
    let mut client = ServeClient::hello(&addr, "crashy").expect("hello");
    let mut resumes = 0u32;
    let mut crashed_server = Some(server);
    for tok in &tokens {
        match client.send_token(tok) {
            Ok(()) => {}
            Err(ClientError::Io(_)) => {
                // The server aborted itself; restart it sans crash
                // point and resume.
                let dead = crashed_server
                    .take()
                    .expect("only one tap crash is scheduled");
                drop(dead);
                let (s2, addr2) = spawn_server(&data, &addr, &[]);
                assert_eq!(addr2, addr);
                crashed_server = Some(s2);
                let policy = RetryPolicy {
                    deadline_ops: Some(2_000),
                    ..RetryPolicy::default()
                };
                client.resume(&policy, 7).expect("resume after tap crash");
                resumes += 1;
            }
            Err(e) => panic!("protocol error: {e}"),
        }
    }
    assert_eq!(
        resumes, 1,
        "the scheduled tap crash must have fired exactly once"
    );
    let (want_verdicts, want_final) = reference(&tokens);
    assert_eq!(client.verdicts(), &want_verdicts[..]);
    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn violations_stream_through_the_service_and_health_covers_the_fleet() {
    let data = data_dir("serve-golden");
    let (_server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);

    // Write skew: two rw antidependencies close a G2 cycle at c2.
    let golden = [
        "b1",
        "b2",
        "r1(xinit)",
        "r2(yinit)",
        "w1(y,1)",
        "w2(x,2)",
        "c1",
        "c2",
    ];
    let mut client = ServeClient::hello(&addr, "golden").expect("hello");
    for tok in golden {
        client.send_token(tok).expect("stream golden history");
    }
    let (want, want_final) = {
        let owned: Vec<String> = golden.iter().map(|t| t.to_string()).collect();
        reference(&owned)
    };
    assert_eq!(client.verdicts(), &want[..]);
    assert!(
        client.verdicts()[1].contains("\"G2\""),
        "write skew must fire G2 at c2: {}",
        client.verdicts()[1]
    );

    let (status, body) = http_get(&addr, "/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"session\": \"golden\""), "{body}");
    assert!(body.contains("\"healthy\": true"), "{body}");
    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("session=\"golden\""),
        "per-session SLI labels missing from /metrics"
    );

    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn aborts_stream_through_the_service_and_survive_kill_resume() {
    let data = data_dir("serve-abort");
    let (server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);

    // G1a: t2 reads t1's write, then t1 aborts — the verdict arrives
    // at c2. Aborts themselves produce no verdict line, so the stream
    // must keep flowing straight through `a1` and `a3` without the
    // client stalling on a reply that never comes.
    let tokens: Vec<String> = [
        "b1",
        "w1(x,1)",
        "b2",
        "r2(x1)",
        "a1",
        "c2",
        "b3",
        "w3(y,3)",
        "a3",
        "b4",
        "r4(xinit)",
        "c4",
    ]
    .iter()
    .map(|t| t.to_string())
    .collect();

    let mut client = ServeClient::hello(&addr, "aborter").expect("hello");
    let mut resumes = 0u32;
    // Stream through the first abort, then kill -9 the server so the
    // resume's re-sent suffix can itself contain abort tokens.
    for tok in &tokens[..5] {
        send_resilient(&mut client, tok, &addr, &mut resumes);
    }
    drop(server);
    let (_server2, addr2) = spawn_server(&data, &addr, &[]);
    assert_eq!(addr2, addr);
    for tok in &tokens[5..] {
        send_resilient(&mut client, tok, &addr, &mut resumes);
    }
    assert!(resumes >= 1, "the kill must have forced a resume");

    let (want, want_final) = reference(&tokens);
    assert_eq!(
        client.verdicts(),
        &want[..],
        "verdict stream with aborts must be byte-identical to the reference"
    );
    assert!(
        client.verdicts()[0].contains("\"G1a\""),
        "reading from an aborted transaction must fire G1a at c2: {}",
        client.verdicts()[0]
    );
    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn idle_connections_detach_and_release_their_session() {
    let data = data_dir("serve-idle");
    let (_server, addr) = spawn_server(&data, "127.0.0.1:0", &["--idle-timeout-ms", "750"]);

    let mut first = TcpStream::connect(&addr).expect("connect");
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    first
        .write_all(b"{\"op\": \"hello\", \"session\": \"sleepy\"}\n")
        .expect("hello");
    let mut first_r = BufReader::new(first.try_clone().expect("clone"));
    let mut line = String::new();
    first_r.read_line(&mut line).expect("hello ack");
    assert!(line.contains("\"ok\": \"hello\""), "{line}");
    first.write_all(b"b1 w1(x,1) c1\n").expect("stream");
    line.clear();
    first_r.read_line(&mut line).expect("verdict");
    let verdict = line.trim_end().to_string();
    assert!(
        verdict.starts_with('{') && !verdict.contains("\"error\""),
        "{verdict}"
    );

    // Go silent without closing the socket — a stand-in for a peer
    // that vanished half-open. The session is busy while this
    // connection owns it, but the idle deadline must park it and let
    // a second connection's resume win.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut saw_busy = false;
    let replayed = loop {
        assert!(
            Instant::now() < deadline,
            "idle deadline never released the session"
        );
        let mut s = TcpStream::connect(&addr).expect("connect resumer");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        s.write_all(b"{\"op\": \"resume\", \"session\": \"sleepy\", \"verdicts\": 0}\n")
            .expect("resume");
        let mut r = BufReader::new(s.try_clone().expect("clone"));
        let mut ack = String::new();
        r.read_line(&mut ack).expect("resume ack");
        if ack.contains("\"error\": \"session_busy\"") {
            saw_busy = true;
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        assert!(ack.contains("\"ok\": \"resume\""), "{ack}");
        assert!(ack.contains("\"replay\": 1"), "{ack}");
        let mut v = String::new();
        r.read_line(&mut v).expect("replayed verdict");
        break v.trim_end().to_string();
    };
    assert!(
        saw_busy,
        "the idle connection must have owned the session at first"
    );
    assert_eq!(
        replayed, verdict,
        "replay must re-send the verdict verbatim"
    );

    // The idle connection is told why it was cut loose.
    line.clear();
    first_r.read_line(&mut line).expect("closing frame");
    assert!(line.contains("\"closing\": \"idle\""), "{line}");
}

#[test]
fn multibyte_object_names_survive_timeout_split_lines() {
    let data = data_dir("serve-utf8");
    let (_server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);

    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.write_all(b"{\"op\": \"hello\", \"session\": \"utf8\"}\n")
        .expect("hello");
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    let mut line = String::new();
    r.read_line(&mut line).expect("hello ack");
    assert!(line.contains("\"ok\": \"hello\""), "{line}");

    // Split the line in the middle of the two-byte 'é' and pause well
    // past the server's 100ms read-poll timeout: the partial bytes
    // must survive the timed-out read instead of being dropped by a
    // UTF-8 completeness guard.
    let full = "b1 w1(café,1) c1\n".as_bytes();
    let split = full.iter().position(|&b| b == 0xC3).expect("é lead byte") + 1;
    s.write_all(&full[..split]).expect("first half");
    s.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(400));
    s.write_all(&full[split..]).expect("second half");

    line.clear();
    r.read_line(&mut line).expect("verdict");
    let tokens: Vec<String> = ["b1", "w1(café,1)", "c1"]
        .iter()
        .map(|t| t.to_string())
        .collect();
    let (want, _) = reference(&tokens);
    assert_eq!(
        line.trim_end(),
        want[0],
        "the verdict after a mid-codepoint split must match the reference"
    );
}

#[test]
fn sigterm_drains_gracefully_and_sessions_survive() {
    let data = data_dir("serve-term");
    let (mut server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);

    let tokens = session_tokens(1, 12);
    let mut client = ServeClient::hello(&addr, "steady").expect("hello");
    for tok in &tokens {
        client.send_token(tok).expect("stream");
    }
    let before = client.verdicts().to_vec();

    let pid = server.0.id().to_string();
    let ok = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM")
        .success();
    assert!(ok, "kill -TERM failed");
    let status = server.0.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");

    // The parked session recovers on a fresh server with nothing lost.
    let (_server2, addr2) = spawn_server(&data, &addr, &[]);
    assert_eq!(addr2, addr);
    let policy = RetryPolicy::default();
    client
        .resume(&policy, 3)
        .expect("resume after graceful drain");
    assert_eq!(
        client.verdicts(),
        &before[..],
        "no verdicts may be lost or duplicated"
    );
    let (want, want_final) = reference(&tokens);
    assert_eq!(client.verdicts(), &want[..]);
    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn trace_propagation_annotates_wire_but_ledger_stays_canonical() {
    let data = data_dir("serve-trace-on");
    let (_server, addr) = spawn_server(
        &data,
        "127.0.0.1:0",
        &["--trace-propagate", "--trace-sample", "1", "--node", "n0"],
    );
    let tokens = session_tokens(0, 24);
    let (want, want_final) = reference(&tokens);

    // An opted-in client: verdict lines arrive annotated with a trace
    // id, the client strips the annotation into per-verdict RTTs, and
    // what lands in the ledger is byte-identical to the untraced
    // reference.
    let mut traced = ServeClient::hello_traced(&addr, "traced", true).expect("hello traced");
    for tok in &tokens {
        traced.send_token(tok).expect("send");
    }
    assert_eq!(traced.verdicts(), &want[..]);
    assert_eq!(
        traced.trace_rtts().len(),
        want.len(),
        "1-in-1 sampling must annotate every commit verdict"
    );
    assert!(traced.trace_rtts().iter().all(|&(id, _)| id != 0));
    assert_eq!(traced.close().expect("close"), want_final);

    // A client that does not opt in sees plain canonical lines even
    // though the server's plane is on.
    let mut plain = ServeClient::hello(&addr, "plain").expect("hello plain");
    for tok in &tokens {
        plain.send_token(tok).expect("send");
    }
    assert_eq!(plain.verdicts(), &want[..]);
    assert!(plain.trace_rtts().is_empty());
    assert_eq!(plain.close().expect("close"), want_final);

    // The node serves its stamp segment under /trace, parseable by
    // the merge tooling, with stamps from the streams above.
    let (status, body) = http_get(&addr, "/trace");
    assert_eq!(status, 200);
    let seg = adya_obs::parse_segment(&body).expect("/trace parses as a segment");
    assert_eq!((seg.node.as_str(), seg.role.as_str()), ("n0", "leader"));
    assert!(!seg.stamps.is_empty(), "1-in-1 sampling must stamp");
}

#[test]
fn trace_opt_in_without_server_plane_is_a_no_op() {
    let data = data_dir("serve-trace-off");
    let (_server, addr) = spawn_server(&data, "127.0.0.1:0", &[]);
    let tokens = session_tokens(1, 16);
    let (want, want_final) = reference(&tokens);
    let mut client = ServeClient::hello_traced(&addr, "opt-in", true).expect("hello");
    for tok in &tokens {
        client.send_token(tok).expect("send");
    }
    assert_eq!(client.verdicts(), &want[..]);
    assert!(
        client.trace_rtts().is_empty(),
        "no plane, no annotations, no RTTs"
    );
    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn trace_merge_subcommand_merges_captured_segments() {
    let data = data_dir("serve-trace-merge");
    let (_server, addr) = spawn_server(
        &data,
        "127.0.0.1:0",
        &["--trace-propagate", "--trace-sample", "1", "--node", "m0"],
    );
    let tokens = session_tokens(2, 16);
    let mut client = ServeClient::hello_traced(&addr, "merge", true).expect("hello");
    for tok in &tokens {
        client.send_token(tok).expect("send");
    }
    client.close().expect("close");
    let (status, body) = http_get(&addr, "/trace");
    assert_eq!(status, 200);

    let capture = data.join("m0.json");
    let out = data.join("merged.json");
    std::fs::write(&capture, &body).expect("write capture");
    let ok = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .arg("trace-merge")
        .arg(&capture)
        .arg("--out")
        .arg(&out)
        .status()
        .expect("run trace-merge")
        .success();
    assert!(ok, "trace-merge must exit 0");
    let merged = std::fs::read_to_string(&out).expect("read merged");
    assert!(merged.contains("\"traceEvents\""), "{merged}");
    assert!(merged.contains("\"clock_offsets\""), "{merged}");
    assert!(merged.contains("\"traces\""), "{merged}");
}

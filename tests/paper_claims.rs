//! Integration tests asserting every headline claim of the paper
//! end-to-end (the figure binaries print these; here they gate CI).

use adya::core::{check_mixing, classify, paper, DepKind, Dsg, IsolationLevel};
use adya::history::{parse_history, TxnId};
use adya::prevent::{check_locking, LockingLevel};

#[test]
fn section3_h1_h2_bad_under_both_definitions() {
    for h in [paper::h1(), paper::h2()] {
        assert!(!classify(&h).satisfies(IsolationLevel::PL3));
        assert!(!check_locking(&h, LockingLevel::Serializable).ok());
    }
}

#[test]
fn section3_h1_prime_h2_prime_show_preventative_over_rejection() {
    for h in [paper::h1_prime(), paper::h2_prime()] {
        assert!(
            classify(&h).satisfies(IsolationLevel::PL3),
            "generalized definitions admit the serializable history"
        );
        assert!(
            !check_locking(&h, LockingLevel::Serializable).ok(),
            "preventative definitions reject it (P1/P2)"
        );
    }
}

#[test]
fn figure3_hserial_dsg() {
    let dsg = Dsg::build(&paper::h_serial());
    assert!(dsg.has_edge(TxnId(1), TxnId(2), DepKind::ItemReadDep));
    assert!(dsg.has_edge(TxnId(1), TxnId(2), DepKind::WriteDep));
    assert!(dsg.has_edge(TxnId(1), TxnId(3), DepKind::WriteDep));
    assert!(dsg.has_edge(TxnId(2), TxnId(3), DepKind::ItemReadDep));
    assert!(dsg.has_edge(TxnId(2), TxnId(3), DepKind::ItemAntiDep));
    assert_eq!(
        dsg.serial_order().expect("acyclic"),
        vec![TxnId(1), TxnId(2), TxnId(3)]
    );
}

#[test]
fn figure4_hwcycle_fails_pl1_only_there() {
    let h = paper::h_wcycle();
    let r = classify(&h);
    assert!(!r.satisfies(IsolationLevel::PL1));
    assert_eq!(r.strongest_ansi(), None);
}

#[test]
fn figure5_hphantom_splits_pl299_from_pl3() {
    let h = paper::h_phantom();
    let r = classify(&h);
    assert!(r.satisfies(IsolationLevel::PL299));
    assert!(!r.satisfies(IsolationLevel::PL3));
    let dsg = Dsg::build(&h);
    assert!(dsg.has_edge(TxnId(1), TxnId(2), DepKind::PredAntiDep));
    assert!(dsg.has_edge(TxnId(2), TxnId(1), DepKind::ItemReadDep));
}

#[test]
fn figure6_matrix_spot_checks() {
    // Chain inclusion: any history satisfying a stronger ANSI level
    // satisfies every weaker one.
    for (_, h) in paper::all() {
        let r = classify(&h);
        let ansi = [
            IsolationLevel::PL1,
            IsolationLevel::PL2,
            IsolationLevel::PL299,
            IsolationLevel::PL3,
        ];
        for w in ansi.windows(2) {
            if r.satisfies(w[1]) {
                assert!(r.satisfies(w[0]), "{} ⊂ {} violated", w[1], w[0]);
            }
        }
    }
}

#[test]
fn hwrite_order_version_order_vs_commit_order() {
    let h = paper::h_write_order();
    let x = h.object_by_name("x").unwrap();
    let v1 = adya::history::VersionId::new(TxnId(1), 1);
    let v2 = adya::history::VersionId::new(TxnId(2), 1);
    assert!(h.version_precedes(x, v2, v1), "x2 << x1");
    // T1 committed before T2 in event order.
    let c1 = h.txn(TxnId(1)).unwrap().end_event;
    let c2 = h.txn(TxnId(2)).unwrap().end_event;
    assert!(c1 < c2);
    // T2 serializes before T1.
    let dsg = Dsg::build(&h);
    assert!(dsg.is_valid_serial_order(&[TxnId(2), TxnId(1)]));
}

#[test]
fn hpred_read_minimal_conflict_rule() {
    // The latest match-changing transaction gets the edge; the
    // irrelevant updater does not.
    let dsg = Dsg::build(&paper::h_pred_read());
    assert!(dsg.has_edge(TxnId(1), TxnId(3), DepKind::PredReadDep));
    assert!(!dsg.has_edge(TxnId(2), TxnId(3), DepKind::PredReadDep));
}

#[test]
fn mixing_theorem_consistency_on_paper_histories() {
    // All-PL-3 histories: mixing-correct ⇔ PL-3.
    for (name, h) in paper::all() {
        assert_eq!(
            check_mixing(&h).is_correct(),
            classify(&h).satisfies(IsolationLevel::PL3),
            "{name}"
        );
    }
}

#[test]
fn dirty_read_fragments_of_g1() {
    // The history fragments of §5.2, as concrete histories.
    // G1a: w1(x1:i) … r2(x1:i) … (a1 and c2 in any order).
    let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
    assert!(!classify(&h).satisfies(IsolationLevel::PL2));
    // G1b: w1(x1:i) … r2(x1:i) … w1(x1:j) … c2.
    let h = parse_history("w1(x,1) r2(x1:1) w1(x,2) c1 c2").unwrap();
    assert!(!classify(&h).satisfies(IsolationLevel::PL2));
    // But final-version reads of committed data are fine.
    let h = parse_history("w1(x,1) w1(x,2) c1 r2(x1:2) c2").unwrap();
    assert!(classify(&h).satisfies(IsolationLevel::PL3));
}

#[test]
fn pl1_weak_predicate_guarantee() {
    // H_pred_update: interleaved predicate-based updates pass PL-1.
    let h = paper::h_pred_update();
    let r = classify(&h);
    assert!(r.satisfies(IsolationLevel::PL1));
    assert!(!r.satisfies(IsolationLevel::PL3));
}

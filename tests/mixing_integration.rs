//! Mixed-level systems end-to-end (§5.5): transactions at different
//! Figure 1 rows on one locking engine are always mixing-correct, and
//! the MSG edge rules behave as Definition 9 prescribes.

use adya::core::{check_mixing, classify, IsolationLevel, Msg};
use adya::engine::{Engine, EngineError, Key, LockConfig, LockingEngine, Value};
use adya::history::RequestedLevel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random mixed-level run on the locking engine with a simple
/// round-robin retry driver.
fn mixed_run(seed: u64) -> adya::history::History {
    let engine = LockingEngine::new(LockConfig::serializable());
    let table = engine.catalog().table("acct");
    let seedtx = engine.begin();
    for k in 0..5u64 {
        engine.write(seedtx, table, Key(k), Value::Int(10)).unwrap();
    }
    engine.commit(seedtx).unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    // Degree 0 is excluded: it proscribes nothing (not even G0), so
    // it sits below PL-1 and outside Definition 9's framework — its
    // short write locks genuinely allow write-dependency cycles.
    let configs = [
        LockConfig::read_uncommitted(),
        LockConfig::read_committed(),
        LockConfig::repeatable_read(),
        LockConfig::serializable(),
    ];
    struct Sess {
        txn: adya::history::TxnId,
        ops: Vec<(bool, u64)>,
        pc: usize,
        done: bool,
    }
    let mut sessions: Vec<Sess> = (0..6)
        .map(|_| {
            let cfg = configs[rng.gen_range(0..configs.len())];
            Sess {
                txn: engine.begin_with(cfg),
                ops: (0..3)
                    .map(|_| (rng.gen_bool(0.5), rng.gen_range(0..5u64)))
                    .collect(),
                pc: 0,
                done: false,
            }
        })
        .collect();
    let mut fuel = 500;
    while fuel > 0 && sessions.iter().any(|s| !s.done) {
        fuel -= 1;
        let open: Vec<usize> = (0..sessions.len()).filter(|&i| !sessions[i].done).collect();
        let i = open[rng.gen_range(0..open.len())];
        let s = &mut sessions[i];
        let r = if s.pc == s.ops.len() {
            engine.commit(s.txn)
        } else {
            let (w, k) = s.ops[s.pc];
            if w {
                engine.write(s.txn, table, Key(k), Value::Int(rng.gen_range(0..100)))
            } else {
                engine.read(s.txn, table, Key(k)).map(|_| ())
            }
        };
        match r {
            Ok(()) => {
                if s.pc == s.ops.len() {
                    s.done = true;
                } else {
                    s.pc += 1;
                }
            }
            Err(EngineError::Blocked { .. }) => {}
            Err(_) => {
                let _ = engine.abort(s.txn);
                s.done = true;
            }
        }
    }
    // Abort any session stuck at the fuel limit (deadlock in this
    // simple driver) and finalize.
    for s in &sessions {
        if !s.done {
            let _ = engine.abort(s.txn);
        }
    }
    engine.finalize()
}

#[test]
fn locking_mixes_are_always_mixing_correct() {
    for seed in 0..30u64 {
        let h = mixed_run(seed);
        let rep = check_mixing(&h);
        assert!(rep.is_correct(), "seed {seed}: {rep}\n{h}");
    }
}

#[test]
fn recorded_levels_follow_begin_with() {
    let engine = LockingEngine::new(LockConfig::serializable());
    let t = engine.catalog().table("acct");
    let t1 = engine.begin_with(LockConfig::read_uncommitted());
    let t2 = engine.begin_with(LockConfig::serializable());
    engine.write(t1, t, Key(0), Value::Int(1)).unwrap();
    engine.commit(t1).unwrap();
    engine.read(t2, t, Key(0)).unwrap();
    engine.commit(t2).unwrap();
    let h = engine.finalize();
    assert_eq!(h.level(t1), RequestedLevel::PL1);
    assert_eq!(h.level(t2), RequestedLevel::PL3);
}

#[test]
fn msg_drops_low_level_read_edges() {
    // A PL-1 transaction reading committed data: the read-dependency
    // into it is not an MSG edge, but the write-dependency chain is.
    let engine = LockingEngine::new(LockConfig::serializable());
    let t = engine.catalog().table("acct");
    let t1 = engine.begin_with(LockConfig::serializable());
    engine.write(t1, t, Key(0), Value::Int(1)).unwrap();
    engine.commit(t1).unwrap();
    let t2 = engine.begin_with(LockConfig::read_uncommitted());
    engine.read(t2, t, Key(0)).unwrap();
    engine.write(t2, t, Key(0), Value::Int(2)).unwrap();
    engine.commit(t2).unwrap();
    let h = engine.finalize();
    let msg = Msg::build(&h);
    // ww edge kept; wr into the PL-1 reader dropped.
    assert_eq!(msg.graph().edge_count(), 1);
    assert!(check_mixing(&h).is_correct());
}

#[test]
fn pl3_sessions_inside_a_mix_get_serializability() {
    // Whatever the lower-level transactions do, the PL-3 members of a
    // mixing-correct history are serializable among themselves w.r.t.
    // obligatory edges: spot-check that an all-serializable run
    // classifies as PL-3.
    let engine = LockingEngine::new(LockConfig::serializable());
    let t = engine.catalog().table("acct");
    let a = engine.begin();
    engine.write(a, t, Key(0), Value::Int(1)).unwrap();
    engine.commit(a).unwrap();
    let b = engine.begin();
    engine.read(b, t, Key(0)).unwrap();
    engine.write(b, t, Key(1), Value::Int(2)).unwrap();
    engine.commit(b).unwrap();
    let h = engine.finalize();
    assert!(classify(&h).satisfies(IsolationLevel::PL3));
    assert!(check_mixing(&h).is_correct());
}

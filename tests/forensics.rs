//! Integration tests of the forensics plane: golden `explain`
//! narratives for the paper's canonical G0/G1c/G2 histories, the
//! shrinker's phenomenon-preservation contract over generated
//! histories, and the Chrome-trace export's structure.

use std::path::Path;

use adya::core::analyze;
use adya::forensics::{detected_kinds, extract_all, minimize, narrative, trace_json};
use adya::history::{parse_history_completed, History};
use adya::workloads::histgen::{random_history, HistGenConfig};
use proptest::prelude::*;

/// Loads `tests/data/<name>.hist` the way `adya-check` does: comment
/// lines stripped, remaining lines joined.
fn fixture(name: &str) -> History {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{name}.hist"));
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let text: String = raw
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .collect::<Vec<_>>()
        .join(" ");
    parse_history_completed(&text).expect("fixture parses")
}

/// What `adya-check explain` prints for `h`: the witness narratives,
/// blank line between.
fn explain_text(h: &History) -> String {
    extract_all(h)
        .iter()
        .map(narrative)
        .collect::<Vec<_>>()
        .join("\n")
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{name}.golden"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"))
}

/// The three fixed fixtures: the paper's G0 write cycle, the G1c
/// pure-dependency cycle, and the §2/H2 read-skew G2.
const FIXTURES: [&str; 3] = ["g0_write_cycle", "g1c_cycle", "read_skew"];

#[test]
fn explain_matches_goldens() {
    for name in FIXTURES {
        let h = fixture(name);
        assert_eq!(explain_text(&h), golden(name), "golden drifted: {name}");
    }
}

#[test]
fn minimal_subhistories_hit_the_hand_derived_minimum() {
    // Every phenomenon in these fixtures is a two-transaction cycle
    // (or, for the G-SI family, a two-transaction conflict), so no
    // correct shrinker can go below 2 — and ours must reach it.
    for name in FIXTURES {
        for w in extract_all(&fixture(name)) {
            assert_eq!(
                w.minimal_history.txns().count(),
                2,
                "{name}/{}: minimal sub-history not minimal",
                w.kind
            );
        }
    }
}

#[test]
fn every_cycle_edge_cites_concrete_operations() {
    for name in FIXTURES {
        for w in extract_all(&fixture(name)) {
            for e in &w.cycle {
                assert!(
                    !e.ops.is_empty(),
                    "{name}/{}: edge T{} -> T{} cites nothing",
                    w.kind,
                    e.from.0,
                    e.to.0
                );
                for op in &e.ops {
                    assert!(
                        op.citation.contains("event "),
                        "{name}/{}: citation lacks an event position: {}",
                        w.kind,
                        op.citation
                    );
                }
            }
        }
    }
}

/// A string-aware structural scan: balanced braces/brackets outside
/// string literals, no trailing comma before a closer. Not a full
/// parser (CI runs one), but enough to catch a broken writer.
fn assert_balanced_json(s: &str) {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut esc = false;
    let mut prev_nonspace = ' ';
    for ch in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if ch == '\\' {
                esc = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                assert_ne!(prev_nonspace, ',', "trailing comma before {ch}");
                depth -= 1;
                assert!(depth >= 0, "unbalanced closer");
            }
            _ => {}
        }
        if !ch.is_whitespace() {
            prev_nonspace = ch;
        }
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth, 0, "unbalanced trace JSON");
}

#[test]
fn trace_export_is_wellformed_and_complete() {
    let h = fixture("read_skew");
    let a = analyze(&h);
    let t = trace_json(&h, Some(&a));
    assert_balanced_json(&t);
    assert!(t.contains("\"traceEvents\""), "{t}");
    // One metadata record and one lane of spans per transaction.
    for needle in ["\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"i\""] {
        assert!(t.contains(needle), "missing {needle}: {t}");
    }
    assert!(t.contains("\"T1\"") && t.contains("\"T2\""), "{t}");
    // The anomaly lane names the fired phenomena.
    assert!(t.contains("G2"), "{t}");
}

fn cfg_strategy() -> impl Strategy<Value = HistGenConfig> {
    (2usize..6, 2usize..4, 1usize..5, 0.0f64..1.0, 0.0f64..0.5).prop_map(
        |(txns, objects, ops, write, dirty)| HistGenConfig {
            txns,
            objects,
            ops_per_txn: ops,
            write_prob: write,
            dirty_read_prob: dirty,
            abort_prob: 0.1,
            shuffle_order_prob: 0.0,
            max_concurrent: 0,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The shrinker's contract: the minimized history detects exactly
    /// the original phenomenon-kind set — nothing lost, nothing
    /// acquired — and never grows.
    #[test]
    fn shrinking_never_changes_the_phenomenon_set(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let shrunk = minimize(&h);
        prop_assert_eq!(detected_kinds(&shrunk), detected_kinds(&h));
        prop_assert!(shrunk.len() <= h.len());
    }

    /// Every extracted witness stands on its own: its minimal history
    /// still exhibits the witness's phenomenon, and its cycle edges all
    /// carry provenance.
    #[test]
    fn witnesses_are_self_contained(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        for w in extract_all(&h) {
            prop_assert!(
                detected_kinds(&w.minimal_history).contains(&w.kind),
                "{} lost by its own minimal history", w.kind
            );
            for e in &w.cycle {
                prop_assert!(!e.ops.is_empty(), "unprovenanced edge in {}", w.kind);
            }
        }
    }
}

//! Online/batch equivalence: for random commit-order histories, the
//! streaming checker's final verdict — after a full ingest with the
//! most aggressive GC configuration — must match the batch
//! classification exactly, both in the strongest ANSI level and in
//! the set of fired phenomena.
//!
//! Histories are sampled with `shuffle_order_prob = 0.0` because the
//! online checker installs versions at commit time: explicit version
//! orders that diverge from commit order are a batch-only concept
//! (see `adya::online` crate docs).

use std::collections::BTreeSet;

use adya::core::{classify, detect_all, PhenomenonKind};
use adya::online::{GcConfig, OnlineChecker};
use adya::workloads::histgen::{random_history, HistGenConfig};
use proptest::prelude::*;

/// The phenomena the online checker reports (the ANSI chain's
/// proscriptions); batch-only extensions (G-single, G-SI, …) are
/// filtered out of the batch side before comparing.
const ONLINE_KINDS: [PhenomenonKind; 6] = [
    PhenomenonKind::G0,
    PhenomenonKind::G1a,
    PhenomenonKind::G1b,
    PhenomenonKind::G1c,
    PhenomenonKind::G2Item,
    PhenomenonKind::G2,
];

fn cfg_strategy() -> impl Strategy<Value = HistGenConfig> {
    (
        2usize..8,
        2usize..5,
        1usize..6,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..0.5,
        // Both unbounded concurrency (everything live at once, GC
        // mostly idle until the tail) and tight windows (GC prunes
        // mid-stream, the regime it exists for).
        prop_oneof![Just(0usize), 1usize..4],
    )
        .prop_map(
            |(txns, objects, ops, write, dirty, abortp, win)| HistGenConfig {
                txns,
                objects,
                ops_per_txn: ops,
                write_prob: write,
                dirty_read_prob: dirty,
                abort_prob: abortp,
                // Install order must equal commit order for the streaming
                // model; see the module docs above.
                shuffle_order_prob: 0.0,
                max_concurrent: win,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Full-ingest equivalence with GC at its most aggressive setting
    /// (a collection pass after every event), so any pruning bug that
    /// loses an edge, a cycle, or a dirty-read witness shows up as a
    /// verdict divergence.
    #[test]
    fn online_matches_batch(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);

        let mut online = OnlineChecker::with_gc(GcConfig { enabled: true, interval: 1 });
        for e in h.events() {
            online.ingest(e);
        }
        let v = online.finish();

        let batch = classify(&h);
        prop_assert_eq!(
            v.strongest_ansi,
            batch.strongest_ansi(),
            "strongest ANSI level diverged (online fired {:?}):\n{}",
            online.fired_kinds(),
            h
        );

        let batch_kinds: BTreeSet<PhenomenonKind> = detect_all(&h)
            .iter()
            .map(|p| p.kind())
            .filter(|k| ONLINE_KINDS.contains(k))
            .collect();
        let online_kinds: BTreeSet<PhenomenonKind> =
            online.fired_kinds().into_iter().collect();
        prop_assert_eq!(
            online_kinds,
            batch_kinds,
            "fired-phenomena sets diverged:\n{}",
            h
        );

        // Commit-order histories never read versions the GC has
        // already pruned incorrectly: a nonzero stale count means a
        // liveness-accounting bug, not a legitimately weakened verdict.
        prop_assert_eq!(v.stale_refs, 0, "stale reads under GC:\n{}", h);
    }

    /// GC must be verdict-neutral: the same ingest with collection
    /// disabled (exact batch memory behaviour) produces the same
    /// verdict as interval-1 collection.
    #[test]
    fn gc_is_verdict_neutral(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);

        let mut eager = OnlineChecker::with_gc(GcConfig { enabled: true, interval: 1 });
        let mut keeper = OnlineChecker::with_gc(GcConfig { enabled: false, interval: 1 });
        for e in h.events() {
            eager.ingest(e);
            keeper.ingest(e);
        }
        let ve = eager.finish();
        let vk = keeper.finish();
        prop_assert_eq!(ve.strongest_ansi, vk.strongest_ansi, "GC changed the level:\n{}", h);
        let ke: BTreeSet<PhenomenonKind> = ve.fired.iter().copied().collect();
        let kk: BTreeSet<PhenomenonKind> = vk.fired.iter().copied().collect();
        prop_assert_eq!(ke, kk, "GC changed the fired set:\n{}", h);
    }
}

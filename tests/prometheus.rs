//! Prometheus exposition-format tests: a golden for a synthetic
//! registry snapshot, plus a format lint applied to every surface
//! that emits the format — the golden, `adya-check --metrics prom`,
//! and the live `/metrics` obs endpoint.
//!
//! Regenerate the golden with
//! `REGEN_GOLDEN=1 cargo test --test prometheus`.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use adya_obs::Registry;

/// Lints `text` against the text exposition format (version 0.0.4):
/// every sample belongs to a family declared by a `# HELP` line
/// followed by a `# TYPE` line (each exactly once, HELP first), type
/// is a known kind, summary families may emit `_sum`/`_count`
/// series, names are well-formed, values parse, and no series
/// (name + label set) repeats. Panics with the offending line.
fn lint_prometheus(text: &str) {
    let name_ok = |n: &str| {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut series: HashSet<String> = HashSet::new();
    let mut sampled: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (fam, docs) = rest.split_once(' ').unwrap_or((rest, ""));
            assert!(name_ok(fam), "bad HELP family name: {line}");
            assert!(!docs.is_empty(), "HELP without docs: {line}");
            assert!(helped.insert(fam.to_string()), "duplicate HELP: {line}");
            assert!(!typed.contains_key(fam), "HELP must precede TYPE for {fam}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (fam, kind) = rest.split_once(' ').unwrap_or((rest, ""));
            assert!(helped.contains(fam), "TYPE without preceding HELP: {line}");
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind),
                "unknown TYPE kind: {line}"
            );
            assert!(
                typed.insert(fam.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");
        // Sample: `name{labels} value` or `name value`.
        let (id, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample without value: {line}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value: {line}"
        );
        let name = id.split('{').next().expect("split is non-empty");
        if let Some(labels) = id.strip_prefix(name) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "malformed labels: {line}"
                );
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("label without '=': {line}"));
                    assert!(name_ok(k), "bad label name: {line}");
                    assert!(
                        v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                        "unquoted label value: {line}"
                    );
                    assert!(
                        !v[1..v.len() - 1].contains(['"', '\\', '\n']),
                        "unescaped label value: {line}"
                    );
                }
            }
        }
        assert!(name_ok(name), "bad sample name: {line}");
        // Resolve the family: the name itself, or its summary
        // `_sum`/`_count` companions.
        let fam = [
            name,
            name.trim_end_matches("_sum"),
            name.trim_end_matches("_count"),
        ]
        .into_iter()
        .find(|f| typed.contains_key(*f))
        .unwrap_or_else(|| panic!("sample before/without TYPE declaration: {line}"));
        if fam != name {
            assert_eq!(
                typed[fam], "summary",
                "_sum/_count on a non-summary family: {line}"
            );
        }
        assert!(series.insert(id.to_string()), "duplicate series: {line}");
        sampled.insert(fam.to_string());
    }
    for fam in helped {
        assert!(typed.contains_key(&fam), "HELP without TYPE: {fam}");
        assert!(sampled.contains(&fam), "family with no samples: {fam}");
    }
}

/// A deterministic snapshot exercising every rendering path: dotted
/// and dashed names needing sanitization, a negative gauge, and a
/// summary with exact quantiles.
fn synthetic_prometheus() -> String {
    let r = Registry::new();
    r.counter("online.ingest_events").add(42);
    r.counter("weird.name-1").add(7);
    r.gauge("sli.live_txns").set(3);
    r.gauge("gc.drift").set(-5);
    let h = r.histogram("online.apply_ns");
    for _ in 0..4 {
        h.record(100);
    }
    r.snapshot().to_prometheus()
}

#[test]
fn synthetic_snapshot_matches_golden() {
    let text = synthetic_prometheus();
    lint_prometheus(&text);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/metrics_prom.golden"
    );
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("read golden");
    assert_eq!(
        text, golden,
        "Prometheus rendering drifted; regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn cli_metrics_prom_is_well_formed() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .args(["--metrics", "prom"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn adya-check");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"w1(x,1) c1 r2(x1) c2")
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let prom_at = stdout.find("# HELP").expect("prom block in stdout");
    let prom = &stdout[prom_at..];
    lint_prometheus(prom);
    // Batch mode runs the offline checker, so its families lead.
    assert!(prom.contains("checker_analyses"), "{prom}");
}

/// Holds the spawned streaming process with its stdin open so the
/// obs endpoint stays up, and kills it on drop.
struct StreamingChild(Child);

impl Drop for StreamingChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Starts `adya-check --stream --obs-listen 127.0.0.1:0` with some
/// events applied, returning the process and the bound address.
fn spawn_streaming() -> (StreamingChild, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .args(["--stream", "--obs-listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn adya-check --stream");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(b"w1(x,1) c1 r2(x1) c2\n")
        .expect("write events");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .rsplit_once("listening on ")
        .unwrap_or_else(|| panic!("unexpected stderr line: {line:?}"))
        .1
        .trim()
        .to_string();
    (StreamingChild(child), addr)
}

/// One HTTP/1.1 GET against the obs endpoint; returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect obs endpoint");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Asserts every sample line in `text` carries `key="value"` for each
/// required fleet label — a scrape that cannot be told apart from
/// another node's is a lint failure, not a dashboard surprise.
fn assert_fleet_labels(text: &str, labels: &[(&str, &str)]) {
    let mut samples = 0;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples += 1;
        for (k, v) in labels {
            assert!(
                line.contains(&format!("{k}=\"{v}\"")),
                "sample without {k}=\"{v}\": {line}"
            );
        }
    }
    assert!(samples > 0, "no samples to check: {text}");
}

/// Spawns `adya-serve` with `extra` flags over a scratch data dir,
/// returning the process and bound address (its obs plane shares the
/// service port).
fn spawn_serve(extra: &[&str]) -> (StreamingChild, String, std::path::PathBuf) {
    let data = std::env::temp_dir().join(format!(
        "adya-prom-labels-{}-{}",
        std::process::id(),
        extra.len()
    ));
    let _ = std::fs::remove_dir_all(&data);
    let mut child = Command::new(env!("CARGO_BIN_EXE_adya-serve"))
        .arg("--data")
        .arg(&data)
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn adya-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listen line");
    let addr = line
        .rsplit_once("listening on ")
        .unwrap_or_else(|| panic!("unexpected stderr line: {line:?}"))
        .1
        .trim()
        .to_string();
    // Keep draining stderr: dropping the pipe would make the server's
    // own connection logging fail mid-request.
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    (StreamingChild(child), addr, data)
}

#[test]
fn serve_metrics_carry_node_and_role_labels() {
    let (_leader, addr, data) = spawn_serve(&["--node", "n-lead"]);
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    lint_prometheus(&body);
    assert_fleet_labels(&body, &[("node", "n-lead"), ("role", "leader")]);
    let _ = std::fs::remove_dir_all(data);
}

#[test]
fn serve_metrics_follower_role_label() {
    let (_follower, addr, data) = spawn_serve(&["--node", "n-foll", "--follower"]);
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    lint_prometheus(&body);
    assert_fleet_labels(&body, &[("node", "n-foll"), ("role", "follower")]);
    let _ = std::fs::remove_dir_all(data);
}

#[test]
fn obs_endpoint_metrics_is_well_formed() {
    let (_child, addr) = spawn_streaming();
    // The endpoint is up before the first event applies; poll until
    // ingest shows, then lint the full exposition.
    let mut body = String::new();
    for _ in 0..100 {
        let (status, b) = http_get(&addr, "/metrics");
        assert_eq!(status, 200);
        body = b;
        if body.contains("online_ingest_events") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    lint_prometheus(&body);
    assert!(body.contains("online_ingest_events"), "{body}");
    assert!(body.contains("sli_"), "SLI gauges exported: {body}");
}

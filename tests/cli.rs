//! End-to-end tests of the `adya-check` CLI.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn adya-check");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn analyzes_clean_history() {
    let (stdout, _, code) = run(&[], "w1(x,1) c1 r2(x1) c2");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("phenomena: none"), "{stdout}");
    assert!(stdout.contains("PL-3: ok"));
}

#[test]
fn level_gate_fails_on_violation() {
    let h = "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2";
    let (stdout, _, code) = run(&["--level", "PL-3"], h);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("PL-3: VIOLATED"));
    // …but the same history passes PL-2.
    let (stdout, _, code) = run(&["--level", "PL-2"], h);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("PL-2: SATISFIED"));
}

#[test]
fn dot_output_and_comments() {
    let input = "# a comment line\nw1(x,1) c1\n# another\nr2(x1) c2\n";
    let (stdout, _, code) = run(&["--dot"], input);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph history"));
    assert!(stdout.contains("T1") && stdout.contains("T2"));
}

#[test]
fn predicate_histories_parse() {
    let input = "#pred(POS,1,100) w0(x,10) c0 rp1(POS: x0) w2(z,10) c2 c1";
    let (stdout, _, code) = run(&["--dot"], input);
    assert_eq!(code, Some(0), "{stdout}");
    // The phantom insert creates a predicate anti-dependency edge
    // (visible in the DOT), but no cycle: the history stays PL-3.
    assert!(stdout.contains("rw(pred)"), "{stdout}");
    assert!(stdout.contains("PL-3: ok"), "{stdout}");
}

#[test]
fn invalid_history_reports_cleanly() {
    let (_, stderr, code) = run(&[], "r2(x1) c2");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("invalid history"), "{stderr}");
}

#[test]
fn uncommitted_transactions_are_completed() {
    // T2 left open: the completion rule appends an abort, and the
    // analysis proceeds.
    let (stdout, _, code) = run(&[], "w1(x,1) c1 r2(x1)");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("(1 committed)"), "{stdout}");
}

#[test]
fn json_output_is_parseable_shape() {
    let h = "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2";
    let (stdout, _, code) = run(&["--json"], h);
    assert_eq!(code, Some(0));
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'));
    assert!(stdout.contains("\"strongest_ansi\": \"PL-2\""), "{stdout}");
    assert!(stdout.contains("\"PL-3\": false"));
    assert!(stdout.contains("\"kind\": \"G2\""));
    // Balanced quotes (even count) — a cheap well-formedness check.
    assert_eq!(stdout.matches('"').count() % 2, 0);
}

#[test]
fn metrics_json_has_phase_timings_and_graph_stats() {
    let (stdout, _, code) = run(&["--metrics", "--json"], "w1(x,1) c1 r2(x1) c2");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"metrics\": {"), "{stdout}");
    // Checker phase timing histograms, all with one nonzero sample.
    for phase in ["dsg_build", "detect_all", "classify", "mixing", "total"] {
        let key = format!("\"checker.phase.{phase}_ns\": {{");
        assert!(stdout.contains(&key), "missing {key} in:\n{stdout}");
    }
    assert!(stdout.contains("\"count\": 1"), "{stdout}");
    // The total phase covers the others, so its sum must be nonzero.
    let total = stdout
        .split("\"checker.phase.total_ns\": {")
        .nth(1)
        .and_then(|rest| rest.split("\"sum\": ").nth(1))
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse::<u64>().ok())
        .expect("total_ns sum present");
    assert!(total > 0, "phase timing recorded:\n{stdout}");
    // Graph-shape stats for this two-transaction history.
    assert!(stdout.contains("\"checker.dsg.nodes\": 2"), "{stdout}");
    assert!(stdout.contains("\"checker.dsg.edges\": 1"), "{stdout}");
    assert!(stdout.contains("\"checker.dsg.sccs\": 2"), "{stdout}");
    assert!(
        stdout.contains("\"checker.history.committed\": 2"),
        "{stdout}"
    );
    assert!(stdout.contains("\"checker.analyses\": 1"), "{stdout}");
    // Still one well-formed JSON object.
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.trim_end().ends_with('}'));
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());
}

#[test]
fn metrics_text_block() {
    let (stdout, _, code) = run(&["--metrics"], "w1(x,1) c1 r2(x1) c2");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("metrics:"), "{stdout}");
    assert!(stdout.contains("checker.dsg.nodes = 2"), "{stdout}");
    assert!(
        stdout.contains("checker.phase.total_ns: count=1"),
        "{stdout}"
    );
}

#[test]
fn json_with_level_gate() {
    let (stdout, _, code) = run(&["--json", "--level", "PL-3"], "w1(x,1) c1");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"PL-3\": true"));
    let (_, _, code) = run(
        &["--json", "--level", "PL-1"],
        "w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]",
    );
    assert_eq!(code, Some(1));
}

#[test]
fn unknown_flag_and_bad_level() {
    let (_, stderr, code) = run(&["--bogus"], "");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag"));
    let (_, stderr, code) = run(&["--level", "PL-9"], "");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown level"));
}

#[test]
fn pipelined_stream_matches_sequential() {
    // A stream with a G2 write-skew plus clean traffic: the pipelined
    // apply thread must emit the byte-identical verdict stream,
    // whatever the ring/batch timing was.
    let h = "b1 b2 r1(xinit) r2(yinit) w1(y,1) w2(x,2) c1 c2 w3(z,3) c3 r4(z3) c4\n";
    let (seq_out, _, seq_code) = run(&["--stream"], h);
    let (par_out, _, par_code) = run(&["--stream", "--pipeline-threads", "3"], h);
    assert_eq!(seq_code, Some(0));
    assert_eq!(par_code, Some(0));
    assert_eq!(par_out, seq_out, "pipelined verdict stream diverged");
    assert!(seq_out.contains("\"G2\""), "{seq_out}");
}

#[test]
fn pipelined_stream_rejects_in_thread_hooks() {
    // --delay-event-ms / --obs-listen / --trace-out hook each event on
    // the ingest thread; combined with --pipeline-threads they are a
    // usage error, not silently ignored.
    let (_, stderr, code) = run(
        &[
            "--stream",
            "--pipeline-threads",
            "2",
            "--delay-event-ms",
            "1",
        ],
        "",
    );
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--pipeline-threads"), "{stderr}");
}

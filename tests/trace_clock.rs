//! Clock-handling properties of the latency-provenance plane: per-
//! stage stamps for one trace are monotonically non-decreasing in
//! real stamping order — across the ring handoff, through batch
//! apply, and straight through a snapshot + recover of the session
//! in the middle of the stream. A negative stage delta would render
//! as a backwards span in every merged trace, so none may exist.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adya::online::{OnlineChecker, PipelineConfig};
use adya::serve::{Session, SessionConfig};
use adya_faults::{TapCrashConfig, TapCrashPlane};
use adya_obs::trace::{Stage, Stamp};
use adya_obs::TracePlane;
use proptest::prelude::*;

/// Per-trace stage timestamps, from a plane's collected stamps.
fn stages_by_trace(stamps: &[Stamp]) -> std::collections::BTreeMap<u64, Vec<(Stage, u64)>> {
    let mut out: std::collections::BTreeMap<u64, Vec<(Stage, u64)>> =
        std::collections::BTreeMap::new();
    for s in stamps {
        out.entry(s.trace).or_default().push((s.stage, s.t_ns));
    }
    out
}

/// Asserts that for every trace, the stages present appear with
/// non-decreasing timestamps when ordered by `order` (the real-time
/// stamping order of the path under test), i.e. no stage delta along
/// the chain is negative.
fn assert_monotonic(stamps: &[Stamp], order: &[Stage]) {
    for (trace, stages) in stages_by_trace(stamps) {
        let mut last: Option<(Stage, u64)> = None;
        for &want in order {
            for &(stage, t) in &stages {
                if stage != want {
                    continue;
                }
                if let Some((prev, pt)) = last {
                    assert!(
                        t >= pt,
                        "trace {trace:#x}: {:?} at {t} precedes {prev:?} at {pt}",
                        stage
                    );
                }
                last = Some((stage, t));
            }
        }
    }
}

/// A unique scratch directory per proptest case.
fn scratch() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adya-trace-clock-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One deterministic line of tokens per transaction: begin, a read of
/// the last committed version when there is one, a write, commit.
fn token_lines(txns: u64, salt: u64) -> Vec<String> {
    let mut lines = Vec::new();
    let mut last_writer = [None::<u64>; 4];
    let obj = |i: usize| (b'a' + i as u8) as char;
    for t in 1..=txns {
        let wobj = ((t + salt) % 4) as usize;
        let robj = ((t * 3 + salt) % 4) as usize;
        let mut toks = vec![format!("b{t}")];
        if let Some(w) = last_writer[robj] {
            toks.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        toks.push(format!("w{t}(k{},{t})", obj(wobj)));
        toks.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
        lines.push(toks.join(" "));
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The durable-session path: tap → ring → seq → log → apply →
    /// verdict stamps stay non-decreasing for every trace, with a
    /// snapshot + park + recover forced mid-stream. The plane (and
    /// its monotonic clock) outlives the session the way the server's
    /// does, so recovery may never produce a backwards stamp either.
    #[test]
    fn session_stamps_monotonic_across_restore(
        txns in 4u64..16,
        batch in 1usize..5,
        salt in 0u64..1_000,
        restore_frac in 1u64..4,
    ) {
        let dir = scratch();
        let plane = Arc::new(TracePlane::new("n0", "leader"));
        plane.set_sample_every(1);
        let mut cfg = SessionConfig::default();
        cfg.pipeline.max_batch = batch;
        let tap = TapCrashPlane::new(TapCrashConfig::default());

        let lines = token_lines(txns, salt);
        let restore_at = (lines.len() as u64 * restore_frac / 4) as usize;
        let mut session = Session::create(&dir, "prop", cfg, None).expect("create");
        session.set_trace(Arc::clone(&plane));
        for (i, line) in lines.iter().enumerate() {
            if i == restore_at {
                session.snapshot().expect("snapshot");
                session.park();
                drop(session);
                session = Session::recover(&dir, "prop", cfg, None).expect("recover");
                session.set_trace(Arc::clone(&plane));
            }
            session.apply_line(line, &tap).expect("apply");
        }

        let stamps = plane.collect();
        prop_assert!(!stamps.is_empty(), "1-in-1 sampling must stamp");
        assert_monotonic(
            &stamps,
            &[Stage::Tap, Stage::Ring, Stage::Seq, Stage::Log, Stage::Apply, Stage::Verdict],
        );
        // Every trace's stamps start at its tap stamp: no stage may
        // precede admission.
        for (trace, stages) in stages_by_trace(&stamps) {
            let tap_t = stages.iter().find(|(s, _)| *s == Stage::Tap).map(|&(_, t)| t);
            if let Some(t0) = tap_t {
                for &(stage, t) in &stages {
                    prop_assert!(t >= t0, "trace {trace:#x}: {stage:?} before tap");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The lock-free ingest pipeline: producer-side tap/ring stamps
    /// and consumer-side seq/apply/verdict stamps for the same trace
    /// ids stay non-decreasing across the ring handoff, for any ring
    /// count and batch size.
    #[test]
    fn pipeline_stamps_monotonic_across_ring_handoff(
        txns in 4u64..16,
        rings in 1usize..4,
        batch in 1usize..6,
        salt in 0u64..1_000,
    ) {
        use adya::online::StreamParser;

        let plane = Arc::new(TracePlane::new("n0", "leader"));
        plane.set_sample_every(1);
        let cfg = PipelineConfig { rings, ring_capacity: 64, max_batch: batch };
        let (producers, mut pipe) = adya::online::EventPipeline::manual(cfg);
        pipe.set_trace(Arc::clone(&plane), "prop");

        let mut parser = StreamParser::new();
        let mut seq = 0u64;
        for line in token_lines(txns, salt) {
            for tok in line.split_whitespace() {
                let ev = parser.parse_token(tok).expect("token parses");
                if plane.sampled(seq) {
                    let id = adya_obs::trace_id("prop", seq);
                    plane.stamp(id, Stage::Tap);
                    plane.stamp(id, Stage::Ring);
                }
                producers[(seq as usize) % rings].push(seq, ev);
                seq += 1;
            }
        }
        drop(producers);
        let mut checker = OnlineChecker::new();
        pipe.run(&mut checker, |_| {});

        let stamps = plane.collect();
        prop_assert!(!stamps.is_empty(), "1-in-1 sampling must stamp");
        assert_monotonic(
            &stamps,
            &[Stage::Tap, Stage::Ring, Stage::Seq, Stage::Apply, Stage::Verdict],
        );
    }
}

//! End-to-end tests of `adya-check --stream` crash recovery: binary
//! event logs are auto-detected, torn tails are reported as structured
//! `truncated_input` records with exit code 3 (the intact prefix still
//! gets its verdict), and mid-file damage stays a hard error.

use std::path::PathBuf;
use std::process::Command;

use adya::history::Event;
use adya::online::{encode_log, StreamParser};

const HIST: &str = "b1 w1(x,1) c1 b2 r2(x1) w2(y,2) c2 b3 r3(y2) w3(x,3) c3";

fn events() -> Vec<Event> {
    let mut p = StreamParser::new();
    HIST.split_whitespace()
        .map(|t| p.parse_token(t).expect("fixture history parses"))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs `adya-check --stream` on `input` written to a scratch file;
/// returns (stdout, stderr, exit code).
fn run_stream(name: &str, input: &[u8]) -> (String, String, i32) {
    let path = tmp(name);
    std::fs::write(&path, input).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .arg("--stream")
        .arg(&path)
        .output()
        .expect("adya-check runs");
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn binary_log_is_detected_and_matches_text_verdicts() {
    let (text_out, _, text_code) = run_stream("sr_text.txt", HIST.as_bytes());
    let (bin_out, _, bin_code) = run_stream("sr_bin.log", &encode_log(&events()));
    assert_eq!(text_code, 0);
    assert_eq!(bin_code, 0);
    assert_eq!(
        text_out, bin_out,
        "binary log must yield the identical verdict stream"
    );
    assert!(text_out.contains("\"final\": true"));
}

#[test]
fn torn_binary_tail_reports_truncated_input_and_exits_3() {
    let full = encode_log(&events());
    let torn = &full[..full.len() - 3];
    let (out, _, code) = run_stream("sr_torn.log", torn);
    assert_eq!(code, 3, "torn tail must use the distinct exit code");
    assert!(
        out.contains("\"error\": \"truncated_input\""),
        "stdout: {out}"
    );
    assert!(
        out.contains("\"final\": true"),
        "the intact prefix still gets its final verdict: {out}"
    );
}

#[test]
fn corrupt_mid_log_is_a_hard_error() {
    let mut bytes = encode_log(&events());
    // Damage the payload of the first record (well before the tail).
    bytes[17] ^= 0x40;
    let (out, err, code) = run_stream("sr_corrupt.log", &bytes);
    assert_eq!(code, 2, "mid-file damage is corruption, not truncation");
    assert!(!out.contains("truncated_input"));
    assert!(err.contains("corrupt"), "stderr: {err}");
}

#[test]
fn torn_text_tail_reports_truncated_input_and_exits_3() {
    // The history cut mid-token, as a killed writer would leave it.
    let torn = "b1 w1(x,1) c1 b2 r2(x";
    let (out, _, code) = run_stream("sr_torn.txt", torn.as_bytes());
    assert_eq!(code, 3);
    assert!(
        out.contains("\"error\": \"truncated_input\""),
        "stdout: {out}"
    );
    assert!(out.contains("\"final\": true"));
}

#[test]
fn garbage_before_more_input_is_a_hard_error() {
    let (_, err, code) = run_stream("sr_garbage.txt", b"b1 w1(x,1) zzz c1\n");
    assert_eq!(code, 2, "damage followed by more input is not a torn tail");
    assert!(err.contains("zzz"), "stderr: {err}");
}

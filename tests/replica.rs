//! End-to-end tests of the `adya-serve` replication plane: a leader
//! streams every durable log byte to a follower; kill -9'ing the
//! leader mid-stream fails clients over to the promoted follower with
//! byte-identical verdict streams; a follower kill -9'd mid-catch-up
//! reconnects and drains its lag to zero; and the leader's `/health`
//! degrades to 503 when acknowledged follower lag exceeds
//! `--repl-lag-max`.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adya::online::{GcConfig, OnlineChecker, StreamParser};
use adya::workloads::{ClientError, RetryPolicy, ServeClient};

struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn data_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `adya-serve` on `listen` over `data`, returning the process
/// and the actually-bound address. Retries briefly so a restart can
/// rebind the port a killed predecessor just held.
fn spawn_server(data: &std::path::Path, listen: &str, extra: &[&str]) -> (Server, String) {
    for attempt in 0..50 {
        let mut child = Command::new(env!("CARGO_BIN_EXE_adya-serve"))
            .arg("--data")
            .arg(data)
            .args([
                "--listen",
                listen,
                "--snapshot-every",
                "8",
                "--rotate-events",
                "16",
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn adya-serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first stderr line");
        if let Some((_, addr)) = line.rsplit_once("listening on ") {
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return (Server(child), addr.trim().to_string());
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(attempt < 49, "adya-serve kept failing to bind: {line:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    unreachable!()
}

/// A deterministic token stream for one session: interleaved begins,
/// version-correct reads, writes and commits over eight objects.
fn session_tokens(session: usize, txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 8];
    let obj = |i: usize| (b'a' + i as u8) as char;
    for t in 1..=txns {
        let wobj = ((t as usize) * 7 + session) % 8;
        let robj = ((t as usize) * 3 + session) % 8;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The uninterrupted in-process reference — (verdict lines, final line).
fn reference(tokens: &[String]) -> (Vec<String>, String) {
    let mut parser = StreamParser::new();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut verdicts = Vec::new();
    for tok in tokens {
        let ev = parser.parse_token(tok).expect("reference tokens parse");
        if let Some(v) = checker.ingest(&ev) {
            verdicts.push(v.to_json());
        }
    }
    (verdicts, checker.finish().to_json())
}

/// Streams one token, transparently failing over (and counting the
/// resume) when the current endpoint is down.
fn send_resilient(client: &mut ServeClient, tok: &str, hint: &str, resumes: &mut u32) {
    match client.send_token(tok) {
        Ok(()) => {}
        Err(ClientError::Io(_)) => {
            let policy = RetryPolicy {
                deadline_ops: Some(2_000),
                ..RetryPolicy::default()
            };
            client
                .resume(&policy, 0xAD7A)
                .unwrap_or_else(|e| panic!("failover resume ({hint}) failed: {e}"));
            *resumes += 1;
        }
        Err(e) => panic!("protocol error streaming {tok:?}: {e}"),
    }
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect service port");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `/health` until `pred` accepts the body (any status), with a
/// hard deadline.
fn await_health(addr: &str, what: &str, pred: impl Fn(u16, &str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(addr, "/health");
        if pred(status, &body) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last /health: {status} {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn leader_sigkill_fails_over_to_promoted_follower_byte_identically() {
    let ldata = data_dir("replica-kill-leader");
    let fdata = data_dir("replica-kill-follower");
    let (_follower, faddr) = spawn_server(&fdata, "127.0.0.1:0", &["--follower"]);
    let (leader, laddr) = spawn_server(&ldata, "127.0.0.1:0", &["--replicate-to", &faddr]);
    let endpoints = format!("{laddr},{faddr}");

    // 4 clients + the killer thread rendezvous twice: once with every
    // session mid-stream, once after the leader has been SIGKILLed.
    let barrier = Arc::new(Barrier::new(5));
    let mut handles = Vec::new();
    for s in 0..4 {
        let endpoints = endpoints.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let tokens = session_tokens(s, 40);
            let name = format!("tenant-{s}");
            let mut client = ServeClient::hello(&endpoints, &name).expect("hello");
            let mut resumes = 0u32;
            let half = tokens.len() / 2;
            for tok in &tokens[..half] {
                send_resilient(&mut client, tok, &endpoints, &mut resumes);
            }
            barrier.wait(); // everyone is mid-stream
            barrier.wait(); // the leader is gone — no replacement coming
            for tok in &tokens[half..] {
                send_resilient(&mut client, tok, &endpoints, &mut resumes);
            }
            let verdicts = client.verdicts().to_vec();
            let fin = client.close().expect("close");
            (tokens, verdicts, fin, resumes)
        }));
    }

    barrier.wait();
    drop(leader); // SIGKILL mid-stream — no flush, no goodbye
    barrier.wait();

    let mut total_resumes = 0;
    for handle in handles {
        let (tokens, verdicts, fin, resumes) = handle.join().expect("client thread");
        let (want_verdicts, want_final) = reference(&tokens);
        assert_eq!(
            verdicts, want_verdicts,
            "post-failover verdict stream must be byte-identical to the uninterrupted run"
        );
        assert_eq!(fin, want_final, "final verdict must match the reference");
        total_resumes += resumes;
    }
    assert!(
        total_resumes >= 4,
        "every session must have failed over across the kill (got {total_resumes})"
    );

    // The follower is the leader now, and says so.
    let body = await_health(&faddr, "promotion to show on /health", |_, b| {
        b.contains("\"role\": \"leader\"")
    });
    assert!(body.contains("\"healthy\": true"), "{body}");
}

#[test]
fn follower_killed_mid_catchup_reconnects_and_drains_its_lag() {
    let ldata = data_dir("replica-catchup-leader");
    let fdata = data_dir("replica-catchup-follower");
    let (follower, faddr) = spawn_server(&fdata, "127.0.0.1:0", &["--follower"]);
    let (leader, laddr) = spawn_server(&ldata, "127.0.0.1:0", &["--replicate-to", &faddr]);
    let endpoints = format!("{laddr},{faddr}");

    let tokens = session_tokens(2, 60);
    let mut client = ServeClient::hello(&endpoints, "churner").expect("hello");
    let third = tokens.len() / 3;
    for tok in &tokens[..third] {
        client.send_token(tok).expect("stream");
    }

    // kill -9 the follower mid-stream, keep the leader under load so
    // the restarted follower has a real catch-up backlog to walk, and
    // the leader meanwhile shows the disconnect as lag.
    drop(follower);
    for tok in &tokens[third..2 * third] {
        client
            .send_token(tok)
            .expect("stream during follower outage");
    }
    await_health(&laddr, "the leader to notice the dead follower", |_, b| {
        b.contains("\"connected\": 0")
    });

    // The reborn follower rebinds the same address, reconnects, and is
    // then kill -9'd again mid-catch-up — the second rebirth must still
    // converge to zero lag.
    let (follower2, faddr2) = spawn_server(&fdata, &faddr, &["--follower"]);
    assert_eq!(faddr2, faddr, "follower must rebind its address");
    await_health(&laddr, "the leader to reconnect", |_, b| {
        b.contains("\"connected\": 1")
    });
    drop(follower2);
    for tok in &tokens[2 * third..] {
        client.send_token(tok).expect("stream during second outage");
    }
    let (_follower3, faddr3) = spawn_server(&fdata, &faddr, &["--follower"]);
    assert_eq!(faddr3, faddr);
    await_health(&laddr, "catch-up to drain the lag", |_, b| {
        b.contains("\"connected\": 1") && b.contains("\"max_lag_records\": 0")
    });

    // Retire the leader; an operator promote frame turns the follower
    // into the leader, and the resumed session is byte-identical.
    drop(leader);
    let mut s = TcpStream::connect(&faddr).expect("connect follower");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    s.write_all(b"{\"op\": \"promote\"}\n").expect("promote");
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    let mut line = String::new();
    r.read_line(&mut line).expect("promote ack");
    assert!(line.contains("\"ok\": \"promote\""), "{line}");

    let policy = RetryPolicy {
        deadline_ops: Some(2_000),
        ..RetryPolicy::default()
    };
    client
        .resume(&policy, 0xF0)
        .expect("resume on the promoted follower");
    let (want, want_final) = reference(&tokens);
    assert_eq!(
        client.verdicts(),
        &want[..],
        "verdicts after follower churn + promotion must match the reference"
    );
    assert_eq!(client.close().expect("close"), want_final);
}

#[test]
fn health_degrades_to_503_when_follower_lag_exceeds_the_bound() {
    let data = data_dir("replica-lag");
    // 127.0.0.1:1 never answers: every published record is permanently
    // unacknowledged, so with --repl-lag-max 0 the first durable
    // append must flip /health to 503.
    let (_leader, addr) = spawn_server(
        &data,
        "127.0.0.1:0",
        &["--replicate-to", "127.0.0.1:1", "--repl-lag-max", "0"],
    );

    let (status, body) = http_get(&addr, "/health");
    assert_eq!(status, 200, "no records, no lag: {body}");
    assert!(body.contains("\"role\": \"leader\""), "{body}");

    let mut client = ServeClient::hello(&addr, "laggy").expect("hello");
    for tok in ["b1", "w1(x,1)", "c1"] {
        client.send_token(tok).expect("stream");
    }
    let body = await_health(&addr, "lag to trip the health bound", |status, _| {
        status == 503
    });
    assert!(body.contains("\"healthy\": false"), "{body}");
    assert!(body.contains("\"connected\": 0"), "{body}");
}

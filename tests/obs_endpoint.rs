//! End-to-end tests of the live obs endpoint: `adya-check --stream
//! --obs-listen` must serve `/metrics`, `/health`, and `/trace`
//! concurrently while verdicts stream, degrade `/health` to 503 when
//! fault-injected ingest lag crosses the threshold, and surface
//! fired phenomena as witness-id exemplars.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Holds the spawned streaming process with its stdin open so the
/// obs endpoint stays up, and kills it on drop.
struct StreamingChild(Child);

impl Drop for StreamingChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Starts `adya-check --stream --obs-listen 127.0.0.1:0 <extra>`,
/// writes `events` to its stdin (left open), and returns the process
/// plus the bound endpoint address parsed from stderr.
fn spawn_streaming(extra: &[&str], events: &str) -> (StreamingChild, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_adya-check"))
        .args(["--stream", "--obs-listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn adya-check --stream");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(events.as_bytes())
        .expect("write events");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .rsplit_once("listening on ")
        .unwrap_or_else(|| panic!("unexpected stderr line: {line:?}"))
        .1
        .trim()
        .to_string();
    (StreamingChild(child), addr)
}

/// One HTTP GET against the obs endpoint; returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect obs endpoint");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Polls `path` until `pred(body)` holds (the stream applies events
/// asynchronously), returning the last (status, body).
fn poll_until(addr: &str, path: &str, pred: impl Fn(&str) -> bool) -> (u16, String) {
    let mut last = (0, String::new());
    for _ in 0..150 {
        last = http_get(addr, path);
        if pred(&last.1) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    last
}

#[test]
fn serves_all_three_routes_concurrently_while_streaming() {
    let (_child, addr) = spawn_streaming(&[], "w1(x,1) c1 r2(x1) c2\n");
    let (status, health) = poll_until(&addr, "/health", |b| b.contains("\"events\": 4"));
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"healthy\": true"), "{health}");
    assert!(health.contains("\"commits\": 2"), "{health}");
    assert!(health.contains("\"thresholds\""), "{health}");

    // All three routes at once, from separate connections.
    let handles: Vec<_> = ["/metrics", "/health", "/trace"]
        .into_iter()
        .map(|path| {
            let addr = addr.clone();
            std::thread::spawn(move || (path, http_get(&addr, path)))
        })
        .collect();
    for h in handles {
        let (path, (status, body)) = h.join().expect("route thread");
        assert_eq!(status, 200, "{path}: {body}");
        match path {
            "/metrics" => assert!(body.contains("# TYPE"), "{body}"),
            "/health" => assert!(body.starts_with('{'), "{body}"),
            "/trace" => assert!(body.contains("\"traceEvents\""), "{body}"),
            _ => unreachable!(),
        }
    }

    let (status, body) = http_get(&addr, "/nope");
    assert_eq!(status, 404);
    assert!(body.contains("/metrics /health /trace"), "{body}");
}

#[test]
fn induced_lag_degrades_health_to_503() {
    // Every event sleeps 30ms at the tap; with the lag threshold at
    // zero, the first sampled event already pushes /health over.
    let (_child, addr) = spawn_streaming(
        &["--delay-event-ms", "30", "--obs-lag-ms", "0"],
        "w1(x,1) c1 r2(x1) c2\n",
    );
    let (status, health) = poll_until(&addr, "/health", |b| b.contains("lagging:"));
    assert_eq!(status, 503, "{health}");
    assert!(health.contains("\"healthy\": false"), "{health}");
    assert!(health.contains("\"ingest_lag_ms\""), "{health}");
}

#[test]
fn fired_phenomenon_shows_as_witness_exemplar() {
    // The G1c fixture: circular information flow, fires at c2.
    let (_child, addr) = spawn_streaming(&[], "w1(x,1) w2(y,2) r1(y2) r2(x1) c1 c2\n");
    let (status, health) = poll_until(&addr, "/health", |b| b.contains("\"phenomenon\": \"G1c\""));
    assert_eq!(status, 200, "health stays 200 on anomalies: {health}");
    assert!(health.contains("\"witness_id\": \"w"), "{health}");
    assert!(health.contains("\"exemplars\""), "{health}");
}

//! End-to-end wiring of the engine event tap into the streaming
//! checker: an [`adya::online::OnlineChecker`] rides along while a
//! 2PL engine executes, and its live verdict must agree with the
//! batch classification of the same engine's finalized history.
//!
//! Locking engines install versions in commit order, so the streaming
//! model's install-at-commit assumption holds exactly.

use std::sync::{Arc, Mutex};

use adya::core::classify;
use adya::engine::{Engine, Key, LockConfig, LockingEngine, Value};
use adya::online::{OnlineChecker, Verdict};

/// Runs `workload` against a locking engine with a live tap attached,
/// returning the streaming verdict and the batch-classified history.
fn run_tapped(
    config: LockConfig,
    workload: impl FnOnce(&LockingEngine, adya::engine::TableId),
) -> (Verdict, adya::core::LevelReport) {
    let engine = LockingEngine::new(config);
    let table = engine.catalog().table("acct");
    let online = Arc::new(Mutex::new(OnlineChecker::new()));
    let sink = Arc::clone(&online);
    engine.set_event_tap(Arc::new(move |e| {
        sink.lock().unwrap().ingest(e);
    }));
    workload(&engine, table);
    let h = engine.finalize();
    let verdict = online.lock().unwrap().finish();
    (verdict, classify(&h))
}

#[test]
fn serial_2pl_workload_is_live_checked_as_pl3() {
    let (v, batch) = run_tapped(LockConfig::serializable(), |e, tbl| {
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(10)).unwrap();
        e.write(t1, tbl, Key(2), Value::Int(20)).unwrap();
        e.commit(t1).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(10)));
        e.write(t2, tbl, Key(1), Value::Int(11)).unwrap();
        e.commit(t2).unwrap();
        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), Some(Value::Int(11)));
        assert_eq!(e.read(t3, tbl, Key(2)).unwrap(), Some(Value::Int(20)));
        e.commit(t3).unwrap();
    });
    assert!(v.is_final);
    assert_eq!(v.committed, 3);
    assert_eq!(v.strongest_ansi, batch.strongest_ansi());
    assert_eq!(
        v.strongest_ansi,
        Some(adya::core::IsolationLevel::PL3),
        "fired: {:?}",
        v.fired
    );
    assert!(v.fired.is_empty());
}

#[test]
fn read_committed_interleaving_is_caught_live() {
    // Short read locks: T2 reads x between T1's two writes of
    // different objects, then T1 overwrites what T2 read before T2
    // commits — an rw edge into T1 and a wr edge out of it once T2's
    // read resolves, i.e. the classic non-repeatable-read shape.
    let (v, batch) = run_tapped(LockConfig::read_committed(), |e, tbl| {
        let t1 = e.begin();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), None);
        e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
        e.commit(t1).unwrap();
        let t3 = e.begin();
        assert_eq!(e.read(t3, tbl, Key(1)).unwrap(), Some(Value::Int(1)));
        e.write(t3, tbl, Key(2), Value::Int(2)).unwrap();
        e.commit(t3).unwrap();
        e.write(t2, tbl, Key(2), Value::Int(3)).unwrap();
        e.commit(t2).unwrap();
    });
    assert_eq!(
        v.strongest_ansi,
        batch.strongest_ansi(),
        "online fired {:?}, batch strongest {:?}",
        v.fired,
        batch.strongest_ansi()
    );
}

#[test]
fn tap_sees_aborts_and_degree0_dirty_reads() {
    // Degree 0: no read locks, short write locks — a transaction can
    // read another's uncommitted write, and an abort of the writer
    // makes that a G1a dirty read, flagged by the live checker.
    let (v, batch) = run_tapped(LockConfig::degree0(), |e, tbl| {
        let t1 = e.begin();
        e.write(t1, tbl, Key(1), Value::Int(7)).unwrap();
        let t2 = e.begin();
        assert_eq!(e.read(t2, tbl, Key(1)).unwrap(), Some(Value::Int(7)));
        e.abort(t1).unwrap();
        e.commit(t2).unwrap();
    });
    assert!(
        v.fired.contains(&adya::core::PhenomenonKind::G1a),
        "fired: {:?}",
        v.fired
    );
    assert_eq!(v.strongest_ansi, batch.strongest_ansi());
}

//! Property-based tests of the checker's core invariants, driven by
//! the neutral random-history sampler and an independent brute-force
//! serializability oracle.

use adya::core::{check_mixing, classify, detect_all, Dsg, IsolationLevel, PhenomenonKind};
use adya::history::{Event, History, TxnId, VersionId};
use adya::prevent::{check_locking, LockingLevel};
use adya::workloads::histgen::{random_history, HistGenConfig};
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = HistGenConfig> {
    (
        2usize..7,
        2usize..5,
        1usize..6,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..0.5,
        prop_oneof![Just(0.0f64), 0.0f64..1.0],
    )
        .prop_map(
            |(txns, objects, ops, write, dirty, abortp, shuffle)| HistGenConfig {
                txns,
                objects,
                ops_per_txn: ops,
                write_prob: write,
                dirty_read_prob: dirty,
                abort_prob: abortp,
                shuffle_order_prob: shuffle,
                max_concurrent: 0,
            },
        )
}

/// Brute-force view-serializability of the committed projection:
/// exists a permutation of the committed transactions under which
/// every committed read observes exactly the version it observed in
/// the history (reads of own earlier writes respected; G1a/G1b
/// histories are never passed in here).
fn view_serializable(h: &History) -> bool {
    let txns: Vec<TxnId> = h.committed_txns().collect();
    assert!(txns.len() <= 7, "oracle is factorial");
    let mut perm: Vec<usize> = (0..txns.len()).collect();
    loop {
        if perm_ok(h, &perm.iter().map(|&i| txns[i]).collect::<Vec<_>>()) {
            return true;
        }
        if !next_permutation(&mut perm) {
            return false;
        }
    }
}

/// Replays `order` serially and checks all committed reads.
fn perm_ok(h: &History, order: &[TxnId]) -> bool {
    use std::collections::HashMap;
    // Current version per object, starting at init.
    let mut current: HashMap<u32, VersionId> = HashMap::new();
    for t in order {
        // Within the transaction, replay its events in history order.
        let mut local: HashMap<u32, VersionId> = HashMap::new();
        for e in h.events() {
            if e.txn() != *t {
                continue;
            }
            match e {
                Event::Read(r) => {
                    let cur = local
                        .get(&r.object.0)
                        .or_else(|| current.get(&r.object.0))
                        .copied()
                        .unwrap_or(VersionId::INIT);
                    if cur != r.version {
                        return false;
                    }
                }
                Event::Write(w) => {
                    local.insert(w.object.0, w.version());
                }
                _ => {}
            }
        }
        for (o, v) in local {
            current.insert(o, v);
        }
    }
    true
}

fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The checker never panics and the level lattice is monotone:
    /// satisfying a stronger ANSI level implies every weaker one.
    #[test]
    fn lattice_monotonicity(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let r = classify(&h);
        let ansi = [
            IsolationLevel::PL1,
            IsolationLevel::PL2,
            IsolationLevel::PL299,
            IsolationLevel::PL3,
        ];
        for w in ansi.windows(2) {
            if r.satisfies(w[1]) {
                prop_assert!(r.satisfies(w[0]), "{} ⊂ {} violated:\n{h}", w[1], w[0]);
            }
        }
        // Extension inclusions.
        if r.satisfies(IsolationLevel::PL3) {
            prop_assert!(r.satisfies(IsolationLevel::PL2Plus));
            prop_assert!(r.satisfies(IsolationLevel::PLCS));
        }
        if r.satisfies(IsolationLevel::PL2Plus) || r.satisfies(IsolationLevel::PLSI) {
            prop_assert!(r.satisfies(IsolationLevel::PLMAV),
                "consistent/snapshot reads are monotonic:\n{h}");
        }
        if r.satisfies(IsolationLevel::PL2Plus) || r.satisfies(IsolationLevel::PLSI)
            || r.satisfies(IsolationLevel::PLCS) || r.satisfies(IsolationLevel::PLMAV) {
            prop_assert!(r.satisfies(IsolationLevel::PL2));
        }
    }

    /// Containment: a commit-order history admitted by a preventative
    /// locking level is admitted by the corresponding generalized
    /// level (the paper's "G is weaker than P" direction).
    #[test]
    fn preventative_implies_generalized(
        mut cfg in cfg_strategy(),
        seed in 0u64..10_000,
    ) {
        cfg.shuffle_order_prob = 0.0; // P-definitions assume single-version installs
        let h = random_history(&cfg, seed);
        let g = classify(&h);
        let pairs = [
            (LockingLevel::ReadUncommitted, IsolationLevel::PL1),
            (LockingLevel::ReadCommitted, IsolationLevel::PL2),
            (LockingLevel::RepeatableRead, IsolationLevel::PL299),
            (LockingLevel::Serializable, IsolationLevel::PL3),
        ];
        for (pl, gl) in pairs {
            if check_locking(&h, pl).ok() {
                prop_assert!(g.satisfies(gl), "{pl} admits but {gl} rejects:\n{h}");
            }
        }
    }

    /// PL-3 acceptance coincides with brute-force view-serializability
    /// on clean (G1-free) commit-order histories — the paper's
    /// completeness claim ("they provide conflict-serializability"),
    /// checked against an independent oracle.
    #[test]
    fn pl3_matches_view_serializability_oracle(
        mut cfg in cfg_strategy(),
        seed in 0u64..10_000,
    ) {
        cfg.txns = cfg.txns.min(6);
        cfg.shuffle_order_prob = 0.0;
        let h = random_history(&cfg, seed);
        let r = classify(&h);
        // Restrict to G1-free histories: view equivalence compares
        // committed reads only, and dirty reads make the projection
        // incomparable.
        let g1_free = !detect_all(&h).iter().any(|p| {
            matches!(
                p.kind(),
                PhenomenonKind::G1a | PhenomenonKind::G1b | PhenomenonKind::G1c
            )
        });
        prop_assume!(g1_free);
        let pl3 = r.satisfies(IsolationLevel::PL3);
        let vs = view_serializable(&h);
        // Conflict-serializable ⇒ view-serializable, always.
        if pl3 {
            prop_assert!(vs, "PL-3 admitted but no serial order exists:\n{h}");
        }
        // For item-only histories without blind-write subtleties the
        // converse almost always holds too, but view ⊋ conflict in
        // general — so only the sound direction is asserted.
    }

    /// All-PL-3 mixing-correctness coincides with PL-3 acceptance
    /// (a corollary of Definition 9 used throughout §5.5).
    #[test]
    fn mixing_equals_pl3_for_uniform_histories(
        cfg in cfg_strategy(),
        seed in 0u64..10_000,
    ) {
        let h = random_history(&cfg, seed);
        prop_assert_eq!(
            check_mixing(&h).is_correct(),
            classify(&h).satisfies(IsolationLevel::PL3)
        );
    }

    /// The DSG has no edges out of aborted transactions and its serial
    /// order (when one exists) is consistent with every edge.
    #[test]
    fn dsg_structural_invariants(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let dsg = Dsg::build(&h);
        for c in dsg.conflicts() {
            prop_assert!(h.is_committed(c.from));
            prop_assert!(h.is_committed(c.to));
            prop_assert!(c.from != c.to, "no self-conflicts");
        }
        if let Some(order) = dsg.serial_order() {
            prop_assert!(dsg.is_valid_serial_order(&order));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Textual round trip: rendering a (item-only) history to the
    /// parser notation and parsing it back preserves the analysis.
    #[test]
    fn notation_round_trips(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let Some(text) = h.to_notation() else {
            return Ok(()); // inexpressible (predicates etc.)
        };
        let h2 = adya::history::parse_history(&text)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(h.len(), h2.len(), "{}", text);
        prop_assert_eq!(
            h.committed_txns().count(),
            h2.committed_txns().count()
        );
        let (r1, r2) = (classify(&h), classify(&h2));
        for l in IsolationLevel::ALL {
            prop_assert_eq!(r1.satisfies(l), r2.satisfies(l), "{} at {}", text, l);
        }
    }

    /// Parts round trip: decomposing and re-validating reproduces the
    /// same history verbatim.
    #[test]
    fn parts_round_trips(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let h2 = History::from_parts(h.to_parts()).expect("parts stay valid");
        prop_assert_eq!(h.to_string(), h2.to_string());
        prop_assert_eq!(h.events(), h2.events());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every witness cycle a detector returns really exists: its edges
    /// are present in the DSG and it is closed.
    #[test]
    fn witnesses_are_real(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let dsg = Dsg::build(&h);
        for p in detect_all(&h) {
            use adya::core::Phenomenon;
            let cycle = match &p {
                Phenomenon::G0(c)
                | Phenomenon::G1c(c)
                | Phenomenon::G2Item(c)
                | Phenomenon::G2(c)
                | Phenomenon::GSingle(c)
                | Phenomenon::GCursor(c) => c,
                _ => continue, // event-level or SSG/USG witnesses
            };
            let es = cycle.edges();
            prop_assert!(!es.is_empty());
            for (i, e) in es.iter().enumerate() {
                prop_assert_eq!(&e.to, &es[(i + 1) % es.len()].from, "closed");
                prop_assert!(
                    dsg.has_edge(e.from, e.to, e.label),
                    "witness edge {} -{}-> {} missing from DSG",
                    e.from, e.label, e.to
                );
            }
        }
    }
}

mod engine_interleavings {
    use adya::core::{classify, IsolationLevel};
    use adya::engine::{
        CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine,
        OccEngine, SgtEngine,
    };
    use adya::workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};
    use proptest::prelude::*;

    fn engine_for(pick: u8) -> (Box<dyn Engine>, IsolationLevel) {
        match pick % 8 {
            0 => (
                Box::new(LockingEngine::new(LockConfig::serializable())),
                IsolationLevel::PL3,
            ),
            1 => (
                Box::new(LockingEngine::new(LockConfig::read_committed())),
                IsolationLevel::PL2,
            ),
            2 => (Box::new(OccEngine::new()), IsolationLevel::PL3),
            3 => (
                Box::new(SgtEngine::new(CertifyLevel::PL3)),
                IsolationLevel::PL3,
            ),
            4 => (
                Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)),
                IsolationLevel::PLSI,
            ),
            5 => (
                Box::new(MvccEngine::new(MvccMode::ReadCommitted)),
                IsolationLevel::PL2,
            ),
            6 => (Box::new(MvtoEngine::new()), IsolationLevel::PL3),
            _ => (
                Box::new(LockingEngine::new(LockConfig::repeatable_read())),
                IsolationLevel::PL299,
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Engine soundness under proptest-chosen workload shapes and
        /// interleavings: the committed history always satisfies the
        /// scheme's level.
        #[test]
        fn random_interleavings_stay_sound(
            pick in 0u8..8,
            seed in 0u64..1_000,
            keys in 2u64..8,
            write_ratio in 0.2f64..0.9,
            delete_prob in 0.0f64..0.4,
        ) {
            let (engine, level) = engine_for(pick);
            let (_, programs) = mixed_workload(
                engine.as_ref(),
                &MixedConfig {
                    keys,
                    txns: 14,
                    ops_per_txn: 3,
                    write_ratio,
                    abort_prob: 0.1,
                    delete_prob,
                    theta: 0.8,
                    seed,
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig { seed, ..Default::default() },
            );
            let h = engine.finalize();
            let r = classify(&h);
            prop_assert!(
                r.satisfies(level),
                "{} violated {level}:\n{h}\n{r}",
                engine.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The static lattice (`IsolationLevel::implies`) is empirically
    /// sound: whenever `a.implies(b)`, every history satisfying `a`
    /// satisfies `b`.
    #[test]
    fn implies_is_empirically_sound(cfg in cfg_strategy(), seed in 0u64..10_000) {
        let h = random_history(&cfg, seed);
        let r = classify(&h);
        for a in IsolationLevel::ALL {
            for b in IsolationLevel::ALL {
                if a.implies(b) && r.satisfies(a) {
                    prop_assert!(
                        r.satisfies(b),
                        "{a} claims to imply {b} but history satisfies only {a}:\n{h}"
                    );
                }
            }
        }
    }
}

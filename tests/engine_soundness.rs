//! End-to-end engine soundness: every history an engine commits must
//! satisfy the isolation level the engine promises — across schemes,
//! workloads and seeds. The engines never consult the checker, so
//! this is the repository's strongest integration property.

use adya::core::{classify, IsolationLevel};
use adya::engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, OccEngine, SgtEngine,
};
use adya::workloads::{
    bank_workload, hotspot_workload, mixed_workload, phantom_workload, run_deterministic,
    BankConfig, DriverConfig, HotspotConfig, MixedConfig, PhantomConfig,
};

type EngineFactory = Box<dyn Fn() -> (Box<dyn Engine>, IsolationLevel)>;

fn schemes() -> Vec<EngineFactory> {
    vec![
        Box::new(|| {
            (
                Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(LockingEngine::new(LockConfig::repeatable_read())) as Box<dyn Engine>,
                IsolationLevel::PL299,
            )
        }),
        Box::new(|| {
            (
                Box::new(LockingEngine::new(LockConfig::read_committed())) as Box<dyn Engine>,
                IsolationLevel::PL2,
            )
        }),
        Box::new(|| {
            (
                Box::new(LockingEngine::new(LockConfig::read_uncommitted())) as Box<dyn Engine>,
                IsolationLevel::PL1,
            )
        }),
        Box::new(|| {
            (
                Box::new(OccEngine::new()) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(adya::engine::MvtoEngine::new()) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(SgtEngine::new(CertifyLevel::PL2)) as Box<dyn Engine>,
                IsolationLevel::PL2,
            )
        }),
        Box::new(|| {
            (
                Box::new(SgtEngine::new(CertifyLevel::PL1)) as Box<dyn Engine>,
                IsolationLevel::PL1,
            )
        }),
        Box::new(|| {
            (
                Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>,
                IsolationLevel::PLSI,
            )
        }),
        Box::new(|| {
            (
                Box::new(MvccEngine::new(MvccMode::ReadCommitted)) as Box<dyn Engine>,
                IsolationLevel::PL2,
            )
        }),
    ]
}

fn assert_level(engine: Box<dyn Engine>, level: IsolationLevel, ctx: &str) {
    let name = engine.name();
    let h = engine.finalize();
    let r = classify(&h);
    assert!(
        r.satisfies(level),
        "{name} violated {level} ({ctx}):\n{h}\n{r}"
    );
}

#[test]
fn mixed_workload_histories_satisfy_levels() {
    for factory in schemes() {
        for seed in 0..5u64 {
            let (engine, level) = factory();
            let (_, programs) = mixed_workload(
                engine.as_ref(),
                &MixedConfig {
                    keys: 6,
                    txns: 20,
                    ops_per_txn: 4,
                    write_ratio: 0.6,
                    abort_prob: 0.15,
                    delete_prob: 0.0,
                    theta: 0.9,
                    seed,
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_level(engine, level, &format!("mixed seed {seed}"));
        }
    }
}

#[test]
fn delete_heavy_workload_histories_satisfy_levels() {
    // Deletes exercise dead versions and row re-incarnation; every
    // scheme must keep its level guarantees.
    for factory in schemes() {
        for seed in 0..4u64 {
            let (engine, level) = factory();
            let (_, programs) = mixed_workload(
                engine.as_ref(),
                &MixedConfig {
                    keys: 5,
                    txns: 24,
                    ops_per_txn: 4,
                    write_ratio: 0.7,
                    abort_prob: 0.1,
                    delete_prob: 0.4,
                    theta: 0.8,
                    seed,
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_level(engine, level, &format!("delete-heavy seed {seed}"));
        }
    }
}

#[test]
fn bank_workload_histories_satisfy_levels() {
    for factory in schemes() {
        for seed in 0..3u64 {
            let (engine, level) = factory();
            let (_, programs) = bank_workload(
                engine.as_ref(),
                &BankConfig {
                    accounts: 4,
                    transfers: 16,
                    audits: 6,
                    seed,
                    ..Default::default()
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_level(engine, level, &format!("bank seed {seed}"));
        }
    }
}

#[test]
fn phantom_workload_histories_satisfy_levels() {
    for factory in schemes() {
        for seed in 0..3u64 {
            let (engine, level) = factory();
            let (_, _, programs) = phantom_workload(
                engine.as_ref(),
                &PhantomConfig {
                    initial_employees: 3,
                    hires: 6,
                    audits: 6,
                    seed,
                    ..Default::default()
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_level(engine, level, &format!("phantom seed {seed}"));
        }
    }
}

#[test]
fn hotspot_workload_histories_satisfy_levels() {
    for factory in schemes() {
        let (engine, level) = factory();
        let (_, programs) = hotspot_workload(
            engine.as_ref(),
            &HotspotConfig {
                keys: 4,
                txns: 24,
                theta: 1.2,
                reads_per_txn: 2,
                seed: 7,
            },
        );
        let _ = run_deterministic(engine.as_ref(), programs, &DriverConfig::default());
        assert_level(engine, level, "hotspot");
    }
}

#[test]
fn serializable_engines_preserve_bank_invariant() {
    // Not just serializable histories: actually correct balances.
    let factories: Vec<EngineFactory> = vec![
        Box::new(|| {
            (
                Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(OccEngine::new()) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(adya::engine::MvtoEngine::new()) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
        Box::new(|| {
            (
                Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>,
                IsolationLevel::PL3,
            )
        }),
    ];
    for factory in factories {
        for seed in 0..4u64 {
            let (engine, _) = factory();
            let (table, programs) = bank_workload(
                engine.as_ref(),
                &BankConfig {
                    accounts: 4,
                    initial_balance: 50,
                    transfers: 20,
                    audits: 4,
                    seed,
                },
            );
            let _ = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            let tx = engine.begin();
            let mut total = 0i64;
            for k in 0..4u64 {
                if let Ok(Some(v)) = engine.read(tx, table, adya::engine::Key(k)) {
                    total += v.as_int().unwrap_or(0);
                }
            }
            let _ = engine.commit(tx);
            assert_eq!(total, 200, "{} seed {seed}", engine.name());
        }
    }
}

//! Compare concurrency-control schemes on one workload: commit rates,
//! aborts, blocking — and verify every recorded history satisfies the
//! scheme's isolation level (a miniature of the `perf_sweep`
//! experiment binary).
//!
//! ```sh
//! cargo run --example engine_compare
//! ```

use adya::core::{classify, IsolationLevel};
use adya::engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, OccEngine, SgtEngine,
};
use adya::workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};

type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;

fn main() {
    let schemes: Vec<(EngineFactory, IsolationLevel)> = vec![
        (
            Box::new(|| {
                Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>
            }),
            IsolationLevel::PL3,
        ),
        (
            Box::new(|| {
                Box::new(LockingEngine::new(LockConfig::read_committed())) as Box<dyn Engine>
            }),
            IsolationLevel::PL2,
        ),
        (
            Box::new(|| Box::new(OccEngine::new()) as Box<dyn Engine>),
            IsolationLevel::PL3,
        ),
        (
            Box::new(|| Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>),
            IsolationLevel::PL3,
        ),
        (
            Box::new(|| Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>),
            IsolationLevel::PLSI,
        ),
    ];

    println!(
        "{:<20} {:>9} {:>8} {:>9} {:>10}   history",
        "scheme", "committed", "aborts", "blocked", "deadlocks"
    );
    for (make, level) in schemes {
        let engine = make();
        let name = engine.name();
        let (_, programs) = mixed_workload(
            engine.as_ref(),
            &MixedConfig {
                keys: 12,
                txns: 30,
                ops_per_txn: 4,
                write_ratio: 0.5,
                abort_prob: 0.05,
                delete_prob: 0.0,
                theta: 0.8,
                seed: 11,
            },
        );
        let stats = run_deterministic(
            engine.as_ref(),
            programs,
            &DriverConfig {
                seed: 11,
                ..Default::default()
            },
        );
        let h = engine.finalize();
        let ok = classify(&h).satisfies(level);
        println!(
            "{:<20} {:>9} {:>8} {:>9} {:>10}   {} at {}",
            name,
            stats.committed,
            stats.total_aborts(),
            stats.blocked,
            stats.deadlock_victims,
            if ok { "valid" } else { "INVALID" },
            level,
        );
        assert!(ok, "{name} produced a history violating {level}");
    }
    println!(
        "\nEvery scheme's history re-checks at its own level — the engines never \
         consult the checker, so this is an end-to-end verification."
    );
}

//! Quickstart: write a history in the paper's notation, analyze it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adya::core::{analyze, paper, IsolationLevel};
use adya::history::parse_history;

fn main() {
    // 1. Histories can be written exactly as in the paper. This is H1:
    //    T2 sees T1's new x but the old y — the invariant x + y = 10
    //    is observed violated.
    let h1 = parse_history("r1(xinit,5) w1(x,1) r2(x1,1) r2(yinit,5) c2 r1(yinit,5) w1(y,9) c1")
        .expect("well-formed history");

    println!("history: {h1}\n");
    let report = analyze(&h1);
    println!("{report}\n");

    assert!(report.levels.satisfies(IsolationLevel::PL2));
    assert!(!report.levels.satisfies(IsolationLevel::PL3));
    println!(
        "H1 is dirty-read free (PL-2) but not serializable (PL-3): the DSG has a \
         cycle with an anti-dependency edge (G2).\n"
    );

    // 2. Every named history of the paper is available pre-built.
    for (name, h) in paper::all() {
        let r = adya::core::classify(&h);
        println!(
            "{name:<16} strongest ANSI level: {}",
            r.strongest_ansi()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "below PL-1".into())
        );
    }

    // 3. Witnesses are concrete: print why H_wcycle fails PL-1.
    let wcycle = paper::h_wcycle();
    let a = analyze(&wcycle);
    println!("\nH_wcycle phenomena:");
    for p in &a.phenomena {
        println!("  {p}");
    }

    // 4. And graphs can be rendered for inspection.
    println!(
        "\nDSG of H_serial as DOT:\n{}",
        analyze(&paper::h_serial()).dsg.to_dot("Hserial")
    );
}

//! Phantoms end-to-end (§5.4): the employee/Sales audit scenario run
//! on engines with different phantom protection, judged by the
//! checker's PL-2.99 / PL-3 distinction.
//!
//! ```sh
//! cargo run --example phantom_hunt
//! ```

use adya::core::{classify, IsolationLevel, PhenomenonKind};
use adya::engine::{Engine, Key, LockConfig, LockingEngine, TablePred, Value};

/// Reproduces H_phantom's interleaving against a locking engine with
/// the given configuration; returns the recorded history (sessions
/// that block simply give up their remaining steps, which is enough to
/// show the difference).
fn run_phantom(config: LockConfig) -> (String, adya::history::History) {
    let engine = LockingEngine::new(config);
    let emp = engine.catalog().table("emp");
    let sums = engine.catalog().table("sums");
    let seed = engine.begin();
    engine.write(seed, emp, Key(0), Value::Int(10)).unwrap();
    engine.write(seed, emp, Key(1), Value::Int(10)).unwrap();
    engine.write(seed, sums, Key(0), Value::Int(20)).unwrap();
    engine.commit(seed).unwrap();

    let sales = TablePred::new("salary>0", emp, |v| matches!(v, Value::Int(i) if *i > 0));

    // T1: predicate-sum the salaries.
    let t1 = engine.begin();
    let _ = engine.select(t1, &sales);
    // T2: hire a new employee and update the stored sum.
    let t2 = engine.begin();
    let hired = engine
        .write(t2, emp, Key(2), Value::Int(10))
        .and_then(|_| engine.read(t2, sums, Key(0)).map(|_| ()))
        .and_then(|_| engine.write(t2, sums, Key(0), Value::Int(30)))
        .and_then(|_| engine.commit(t2));
    // T1 now checks the stored sum.
    let checked = engine
        .read(t1, sums, Key(0))
        .map(|_| ())
        .and_then(|_| engine.commit(t1));

    let note = format!(
        "T2 hire: {}; T1 final check: {}",
        if hired.is_ok() {
            "committed"
        } else {
            "blocked (phantom lock)"
        },
        if checked.is_ok() {
            "committed"
        } else {
            "blocked"
        },
    );
    (note, engine.finalize())
}

fn main() {
    // REPEATABLE READ: short phantom locks — the insert slips in
    // between T1's query and its sum check; the history shows the
    // predicate anti-dependency cycle (G2 but not G2-item).
    let (note, h) = run_phantom(LockConfig::repeatable_read());
    let r = classify(&h);
    println!("REPEATABLE READ: {note}");
    println!(
        "  PL-2.99: {}   PL-3: {}",
        r.satisfies(IsolationLevel::PL299),
        r.satisfies(IsolationLevel::PL3)
    );
    assert!(r.satisfies(IsolationLevel::PL299));
    assert!(!r.satisfies(IsolationLevel::PL3));
    let a = adya::core::analyze(&h);
    let kinds: Vec<_> = a.phenomena.iter().map(|p| p.kind()).collect();
    assert!(kinds.contains(&PhenomenonKind::G2));
    assert!(!kinds.contains(&PhenomenonKind::G2Item));
    for p in &a.phenomena {
        if p.kind() == PhenomenonKind::G2 {
            println!("  witness: {p}");
        }
    }

    // SERIALIZABLE: long phantom locks — the hire blocks until the
    // auditor commits; what commits is PL-3.
    let (note, h) = run_phantom(LockConfig::serializable());
    let r = classify(&h);
    println!("\nSERIALIZABLE: {note}");
    println!("  PL-3: {}", r.satisfies(IsolationLevel::PL3));
    assert!(r.satisfies(IsolationLevel::PL3));

    println!(
        "\nExactly the paper's Figure 5 story: the anomaly lives only in the \
         predicate anti-dependency edge, which PL-2.99 ignores and PL-3 proscribes."
    );
}

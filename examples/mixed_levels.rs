//! Mixed isolation levels (§5.5): transactions at different Figure 1
//! rows share one locking engine; Definition 9 judges the result.
//!
//! ```sh
//! cargo run --example mixed_levels
//! ```

use adya::core::{check_mixing, Msg};
use adya::engine::{Engine, EngineError, Key, LockConfig, LockingEngine, Value};
use adya::history::RequestedLevel;

fn main() {
    let engine = LockingEngine::new(LockConfig::serializable());
    let t = engine.catalog().table("acct");
    let seed = engine.begin();
    engine.write(seed, t, Key(0), Value::Int(5)).unwrap();
    engine.write(seed, t, Key(1), Value::Int(5)).unwrap();
    engine.commit(seed).unwrap();

    // A PL-2 reader scans both keys while a PL-3 transfer runs: the
    // reader's short read locks let it slide between the transfer's
    // writes, which is fine *for the reader's level*.
    let reader = engine.begin_with(LockConfig::read_committed());
    let transfer = engine.begin_with(LockConfig::serializable());

    let r0 = engine.read(reader, t, Key(0)).unwrap(); // old value
    engine.write(transfer, t, Key(0), Value::Int(0)).unwrap();
    engine.write(transfer, t, Key(1), Value::Int(10)).unwrap();
    engine.commit(transfer).unwrap();
    let r1 = engine.read(reader, t, Key(1)).unwrap(); // new value
    engine.commit(reader).unwrap();
    println!(
        "PL-2 reader observed ({:?}, {:?}) — a read-skew view a PL-3 txn must never see",
        r0.and_then(|v| v.as_int()),
        r1.and_then(|v| v.as_int())
    );

    let h = engine.finalize();
    let rep = check_mixing(&h);
    println!("mixing verdict: {rep}");
    assert!(
        rep.is_correct(),
        "the PL-2 reader's anti-dependency is not an obligatory edge"
    );

    let msg = Msg::build(&h);
    println!(
        "MSG: {} nodes, {} edges (the reader's outgoing anti-dependency is dropped)",
        msg.graph().node_count(),
        msg.graph().edge_count()
    );
    println!("\nMSG as DOT:\n{}", msg.to_dot("mixed"));

    // The same history re-labelled all-PL-3 is NOT mixing-correct: the
    // anti-dependency becomes obligatory and closes a cycle.
    let mut parts = adya::history::HistoryParts {
        events: h.events().to_vec(),
        ..Default::default()
    };
    for (o, i) in h.objects() {
        parts.objects.insert(o, i.clone());
    }
    for (r, i) in h.relations() {
        parts.relations.insert(r, i.clone());
    }
    for (txn, _) in h.txns() {
        parts.levels.insert(txn, RequestedLevel::PL3);
    }
    let pl3_history = adya::history::History::from_parts(parts).unwrap();
    let rep3 = check_mixing(&pl3_history);
    println!("\nsame events, everyone at PL-3: {rep3}");
    assert!(!rep3.is_correct());

    // Demonstrate an obligatory conflict the other way: at
    // serializable, the PL-3 reader *blocks* the writer instead.
    let engine = LockingEngine::new(LockConfig::serializable());
    let t = engine.catalog().table("acct");
    let s = engine.begin();
    engine.write(s, t, Key(0), Value::Int(5)).unwrap();
    engine.commit(s).unwrap();
    let pl3_reader = engine.begin_with(LockConfig::serializable());
    let writer = engine.begin_with(LockConfig::read_uncommitted());
    engine.read(pl3_reader, t, Key(0)).unwrap();
    match engine.write(writer, t, Key(0), Value::Int(9)) {
        Err(EngineError::Blocked { holders }) => {
            println!(
                "\nPL-1 writer blocked by PL-3 reader {holders:?}: the overwrite would be \
                 an obligatory anti-dependency"
            );
        }
        other => println!("\nunexpected: {other:?}"),
    }
    let _ = engine.commit(pl3_reader);
    let _ = engine.commit(writer);
    let h = engine.finalize();
    assert!(check_mixing(&h).is_correct());
    println!("final mixed history: {}", check_mixing(&h));
}

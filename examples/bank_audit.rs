//! The bank-invariant scenario of §3 (`x + y = 10`) run end-to-end on
//! three real engines, with the checker judging the recorded
//! histories:
//!
//! * Snapshot Isolation lets write skew through (PL-SI holds, PL-3
//!   does not);
//! * serializable 2PL and OCC produce PL-3 histories;
//! * the checker pinpoints the G2 cycle SI admitted.
//!
//! ```sh
//! cargo run --example bank_audit
//! ```

use adya::core::{analyze, classify, IsolationLevel};
use adya::engine::{
    Engine, Key, LockConfig, LockingEngine, MvccEngine, MvccMode, OccEngine, Value,
};

/// Two "transactions" that each check the constraint `a + b >= 0` and
/// then withdraw from one account — the canonical write-skew pair.
fn write_skew_session(engine: &dyn Engine) -> adya::history::History {
    let t = engine.catalog().table("acct");
    let seed = engine.begin();
    engine.write(seed, t, Key(0), Value::Int(5)).unwrap();
    engine.write(seed, t, Key(1), Value::Int(5)).unwrap();
    engine.commit(seed).unwrap();

    let t1 = engine.begin();
    let t2 = engine.begin();
    // Both read both balances…
    let step = |txn, key| {
        engine
            .read(txn, t, Key(key))
            .map(|v| v.and_then(|v| v.as_int()).unwrap_or(0))
    };
    let _ = step(t1, 0);
    let _ = step(t1, 1);
    let _ = step(t2, 0);
    let _ = step(t2, 1);
    // …and each zeroes a different account ("the other one still
    // covers the constraint").
    let w1 = engine.write(t1, t, Key(0), Value::Int(-5));
    let w2 = engine.write(t2, t, Key(1), Value::Int(-5));
    let c1 = w1.and_then(|_| engine.commit(t1));
    let c2 = w2.and_then(|_| engine.commit(t2));
    println!(
        "  {}: T1 {} / T2 {}",
        engine.name(),
        if c1.is_ok() {
            "committed"
        } else {
            "aborted/blocked"
        },
        if c2.is_ok() {
            "committed"
        } else {
            "aborted/blocked"
        },
    );
    engine.finalize()
}

fn main() {
    println!("write-skew attempt per engine:");

    // Snapshot Isolation: both commit — write skew.
    let si = MvccEngine::new(MvccMode::SnapshotIsolation);
    let h = write_skew_session(&si);
    let r = classify(&h);
    println!(
        "    PL-SI: {}   PL-3: {}",
        r.satisfies(IsolationLevel::PLSI),
        r.satisfies(IsolationLevel::PL3)
    );
    assert!(r.satisfies(IsolationLevel::PLSI));
    if !r.satisfies(IsolationLevel::PL3) {
        let a = analyze(&h);
        for p in a.phenomena {
            if matches!(p.kind(), adya::core::PhenomenonKind::G2) {
                println!("    checker witness: {p}");
            }
        }
    }

    // Serializable 2PL: one side blocks; the history that commits is
    // PL-3.
    let tpl = LockingEngine::new(LockConfig::serializable());
    let h = write_skew_session(&tpl);
    assert!(classify(&h).satisfies(IsolationLevel::PL3));
    println!("    2PL history is PL-3\n");

    // OCC: one side fails validation; the history is PL-3.
    let occ = OccEngine::new();
    let h = write_skew_session(&occ);
    assert!(classify(&h).satisfies(IsolationLevel::PL3));
    println!("    OCC history is PL-3");

    println!(
        "\nTakeaway: the same program exhibits write skew only under SI, and the \
         generalized checker distinguishes the outcomes purely from the recorded \
         histories."
    );
}

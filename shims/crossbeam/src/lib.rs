//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` subset the workspace uses,
//! implemented over `std::thread::scope` (stable since Rust 1.63, so
//! the historic crossbeam implementation is no longer needed). One
//! behavioral difference: a panicking child thread propagates its
//! panic out of `scope` directly instead of surfacing as `Err`, which
//! is equally loud for the workspace's "threads must not panic" uses.

#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads, wrapping
    /// [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the underlying
        /// [`std::thread::Scope`] for nested spawns (crossbeam passes
        /// the scope itself; every call site here ignores it).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(inner))
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame; all spawned threads are joined before it returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let hits = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(hits.into_inner(), 4);
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no reachable crates-io registry, so the
//! workspace's sanctioned external dependencies are provided as local
//! shims exposing exactly the API subset the workspace uses. This one
//! covers `Mutex`/`RwLock` with parking_lot's panic-free guard-return
//! signatures (`lock()` returns the guard directly, no `Result`).
//!
//! Poisoning: parking_lot mutexes are not poisoned by panics; the shim
//! matches that by unwrapping poison errors into the inner guard.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's `lock() -> Guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: a
    /// panic while holding the guard leaves the data accessible, as in
    /// parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's guard-return API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

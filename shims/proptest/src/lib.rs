//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no reachable crates-io registry, so this
//! local shim provides the subset of proptest the workspace's property
//! tests use: range/tuple/`Just`/`prop_oneof!`/`collection::vec`
//! strategies with `prop_map`/`prop_flat_map`, the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros, and a deterministic
//! runner.
//!
//! Deliberate simplifications versus real proptest:
//!
//! * **No shrinking** — a failing case panics with its formatted
//!   message immediately (the workspace's assertions embed the full
//!   history text, which is the useful artifact).
//! * **Seeding is fixed per test name**, so runs are reproducible;
//!   `.proptest-regressions` files are ignored.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident => $ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);

    /// Uniform `bool` (backs `any::<bool>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// `any::<T>()` support for the types the workspace samples.
pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `A` (`any::<bool>()` etc.).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A strategy for `Vec`s with a length drawn from `size` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors; `size` is a half-open length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Configuration, error type and the case-driving runner.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    use rand::SeedableRng as _;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Drives the cases of one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
            TestRunner { config, name }
        }

        /// Runs cases until `config.cases` succeed; panics on the
        /// first failure (no shrinking) or when assumptions reject too
        /// many inputs.
        pub fn run<T>(
            &mut self,
            mut gen: impl FnMut(&mut TestRng) -> T,
            mut test: impl FnMut(T) -> Result<(), TestCaseError>,
        ) {
            let mut hasher = DefaultHasher::new();
            self.name.hash(&mut hasher);
            let mut rng = TestRng::seed_from_u64(hasher.finish());
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let max_rejects = self.config.cases.saturating_mul(16).max(1024);
            while passed < self.config.cases {
                match test(gen(&mut rng)) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejected}) — \
                                 assumption is unsatisfiable in practice",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {passed} passing case(s): {msg}",
                            self.name
                        );
                    }
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the process) so the runner can report the generated inputs'
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), a, b
        );
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case unless the assumption holds; the runner
/// draws fresh inputs instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running `ProptestConfig::cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(
                |__rng| ($($crate::strategy::Strategy::new_value(&($strat), __rng),)+),
                |($($pat,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0u64..5, 0.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!(a < 5, "a = {a}");
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(any::<bool>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn assume_rejects_gracefully(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_oneof(
            (n, k) in (1usize..6).prop_flat_map(|n| (Just(n), 0..n)),
            f in prop_oneof![Just(0.0f64), 0.0f64..1.0],
        ) {
            prop_assert!(k < n);
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_message() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "always_fails");
        runner.run(|_| (), |()| Err(TestCaseError::fail("boom")));
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros) as a
//! plain timed harness: per benchmark it warms up, picks an iteration
//! count targeting a fixed sample duration, and reports the median
//! ns/iter over `sample_size` samples. No statistics beyond the
//! median, no HTML reports, no CLI filtering.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration declaration; only echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id naming only the varying parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measures `f`, storing the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate: grow the per-sample iteration count
        // until one sample takes at least ~5ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        self.iters_per_sample = iters;
        let mut samples: Vec<f64> = (0..self.sample_size.max(1))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares work-per-iteration for the following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` against `input` and prints one report line.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_per_sample: 0,
            sample_size: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut b, input);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.median_ns > 0.0 => {
                format!(" ({:.1} Melem/s)", n as f64 * 1e3 / b.median_ns)
            }
            Some(Throughput::Bytes(n)) if b.median_ns > 0.0 => {
                format!(" ({:.1} MB/s)", n as f64 * 1e3 / b.median_ns)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:.0} ns/iter{rate} [{} iters x {} samples]",
            self.name, id.name, b.median_ns, b.iters_per_sample, self.sample_size
        );
        self
    }

    /// Ends the group (reporting is per-bench; nothing to flush).
    pub fn finish(self) {}
}

/// The harness entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke_group, quick_bench);

    #[test]
    fn harness_runs() {
        smoke_group();
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Covers exactly the API subset this workspace uses: the [`Rng`]
//! extension trait (`gen_range` over integer/float ranges and
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! splitmix64 — statistically solid for workload generation, but the
//! streams differ from the real `rand::StdRng` (ChaCha12), so seeded
//! outputs are reproducible *within* this repo only. No workspace
//! test asserts exact stream values, only distributional and
//! soundness properties.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the convenience `u64` entry point is
/// needed here.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (unbiased
/// enough for workload generation; the tiny modulo bias of the naive
/// approach is avoided without a rejection loop).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
